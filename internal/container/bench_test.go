package container

import (
	"math/rand/v2"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/stm"
)

// benchSTM builds the STM the container benchmarks run on: the greedy
// manager (the paper's headline policy) on pooled sessions.
func benchSTM() *stm.STM {
	return stm.New(stm.WithManagerFactory(core.MustFactory("greedy")))
}

// BenchmarkHashSetAdd measures concurrent add/remove churn on a
// 64-bucket set — mostly disjoint buckets, the manager's easiest case.
func BenchmarkHashSetAdd(b *testing.B) {
	s := benchSTM()
	h := NewHashSet[int](64)
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(uint64(seq.Add(1)), 7))
		for pb.Next() {
			key := int(rng.Int64N(1024))
			var err error
			if rng.Int64N(2) == 0 {
				_, err = stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Add(tx, key) })
			} else {
				_, err = stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Remove(tx, key) })
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHashSetContains measures read-only lookups against a
// pre-populated set.
func BenchmarkHashSetContains(b *testing.B) {
	s := benchSTM()
	h := NewHashSet[int](64)
	for i := 0; i < 512; i++ {
		if _, err := stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Add(tx, i) }); err != nil {
			b.Fatal(err)
		}
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(uint64(seq.Add(1)), 7))
		for pb.Next() {
			key := int(rng.Int64N(1024))
			if _, err := stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Contains(tx, key) }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueueEnqueueDequeue measures the head/tail hot spots: every
// parallel worker alternates an enqueue and a dequeue.
func BenchmarkQueueEnqueueDequeue(b *testing.B) {
	s := benchSTM()
	q := NewQueue[int]()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i++; i%2 == 1 {
				if err := s.Atomically(func(tx *stm.Tx) error { return q.Enqueue(tx, int(seq.Add(1))) }); err != nil {
					b.Fatal(err)
				}
				continue
			}
			if _, _, err := stm.Atomic2(s, q.Dequeue); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOMapPut measures put/delete churn on the skip-list towers.
func BenchmarkOMapPut(b *testing.B) {
	s := benchSTM()
	m := NewOMap[int, int]()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(uint64(seq.Add(1)), 7))
		for pb.Next() {
			key := int(rng.Int64N(1024))
			var err error
			if rng.Int64N(2) == 0 {
				_, _, err = stm.Atomic2(s, func(tx *stm.Tx) (int, bool, error) { return m.Put(tx, key, key) })
			} else {
				_, _, err = stm.Atomic2(s, func(tx *stm.Tx) (int, bool, error) { return m.Delete(tx, key) })
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOMapRange measures consistent range scans (span 32)
// competing with nothing — the raw multi-variable read cost.
func BenchmarkOMapRange(b *testing.B) {
	s := benchSTM()
	m := NewOMap[int, int]()
	for i := 0; i < 1024; i++ {
		if _, _, err := stm.Atomic2(s, func(tx *stm.Tx) (int, bool, error) { return m.Put(tx, i, i) }); err != nil {
			b.Fatal(err)
		}
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(uint64(seq.Add(1)), 7))
		for pb.Next() {
			from := int(rng.Int64N(1024 - 32))
			pairs, err := stm.Atomic(s, func(tx *stm.Tx) ([]KV[int, int], error) {
				return m.Range(tx, from, from+32)
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(pairs) != 32 {
				b.Fatalf("range returned %d pairs, want 32", len(pairs))
			}
		}
	})
}
