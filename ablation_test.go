package repro_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/stm"
)

// runListOps drives b.N single-threaded list operations on a world
// configured with the given options — the ablation baseline where only
// the STM knob under study varies.
func runListOps(b *testing.B, opts ...stm.Option) {
	b.Helper()
	opts = append(opts, stm.WithManagerFactory(core.MustFactory("greedy")))
	world := stm.New(opts...)
	list := intset.NewList()
	for key := 0; key < 256; key += 2 {
		key := key
		if err := world.Atomically(func(tx *stm.Tx) error {
			_, err := list.Insert(tx, key)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := int(rng.Int64N(256))
		insert := rng.Int64N(2) == 0
		if err := world.Atomically(func(tx *stm.Tx) error {
			var err error
			if insert {
				_, err = list.Insert(tx, key)
			} else {
				_, err = list.Remove(tx, key)
			}
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationValidation quantifies the commit-clock validation
// shortcut (DESIGN.md design choice): with the clock, a quiescent
// transaction validates in O(1); without it every open rescans the
// read set, making a list traversal quadratic.
func BenchmarkAblationValidation(b *testing.B) {
	b.Run("commit-clock", func(b *testing.B) { runListOps(b) })
	b.Run("full-rescan", func(b *testing.B) { runListOps(b, stm.WithFullValidation()) })
}

// BenchmarkLazyVsEager compares the paper's eager, open-time conflict
// detection (with the greedy manager) against Harris–Fraser-style
// commit-time detection on the contended list (E12, after the paper's
// Section 6 discussion). Lazy transactions never consult a contention
// manager; their losers discover conflicts only after executing in
// full, so aborts/commit (reported) measures the wasted work.
func BenchmarkLazyVsEager(b *testing.B) {
	b.Run("eager-greedy", func(b *testing.B) {
		world := stm.New(stm.WithInterleavePeriod(4), stm.WithManagerFactory(core.MustFactory("greedy")))
		list := intset.NewList()
		seedList(b, world, list)
		benchContendedList(b, world, list)
	})
	b.Run("lazy", func(b *testing.B) {
		world := stm.New(stm.WithInterleavePeriod(4), stm.WithManagerFactory(core.MustFactory("greedy")), stm.WithLazyConflicts())
		list := intset.NewList()
		seedList(b, world, list)
		benchContendedList(b, world, list)
	})
}

func seedList(b *testing.B, world *stm.STM, list *intset.List) {
	b.Helper()
	for key := 0; key < 256; key += 2 {
		key := key
		if err := world.Atomically(func(tx *stm.Tx) error {
			_, err := list.Insert(tx, key)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInterleave quantifies the cooperative-interleaving
// substitution (DESIGN.md): the yield period trades single-thread
// speed for cross-transaction overlap. Contention (aborts/commit,
// reported) rises as the period shrinks.
func BenchmarkAblationInterleave(b *testing.B) {
	for _, period := range []int{0, 16, 4, 1} {
		period := period
		name := fmt.Sprintf("period=%d", period)
		if period == 0 {
			name = "period=off"
		}
		b.Run(name, func(b *testing.B) {
			world := stm.New(stm.WithInterleavePeriod(period), stm.WithManagerFactory(core.MustFactory("greedy")))
			list := intset.NewList()
			seedList(b, world, list)
			benchContendedList(b, world, list)
		})
	}
}

// benchContendedList spreads b.N list updates over 8 goroutines on
// the pooled API.
func benchContendedList(b *testing.B, world *stm.STM, list *intset.List) {
	b.Helper()
	var next = make(chan int)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		rng := rand.New(rand.NewPCG(uint64(w)+7, 13))
		go func() {
			for range next {
				key := int(rng.Int64N(256))
				insert := rng.Int64N(2) == 0
				err := world.Atomically(func(tx *stm.Tx) error {
					var err error
					if insert {
						_, err = list.Insert(tx, key)
					} else {
						_, err = list.Remove(tx, key)
					}
					return err
				})
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next <- i
	}
	close(next)
	b.StopTimer()
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	stats := world.TotalStats()
	if stats.Commits > 0 {
		b.ReportMetric(float64(stats.Aborts)/float64(stats.Commits), "aborts/commit")
	}
}
