#!/usr/bin/env bash
# Crash-restart smoke: kill -9 the durable server mid-loadgen, restart
# on the same data directory, and verify from outside the process that
# the restored state upholds the durable invariants — account
# conservation (every MULTI/EXEC transfer is all-or-nothing across the
# crash) and TTL semantics (a long-lived probe survives with its
# deadline, an expired one stays dead). CI runs this after the
# in-process smokes; see DESIGN.md §Durability for why the log's
# per-key ordering makes the conservation check sound.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:6404
DATA=$(mktemp -d)
BIN=$(mktemp -d)/stmkv
SERVER_PID=
LOADGEN_PID=

cleanup() {
    [ -n "$LOADGEN_PID" ] && kill "$LOADGEN_PID" 2>/dev/null || true
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$DATA" "$(dirname "$BIN")"
}
trap cleanup EXIT

wait_ready() {
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/6404") 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "crash_smoke: server never came up" >&2
    return 1
}

go build -o "$BIN" ./cmd/stmkv

echo "== phase 1: seed a durable server, plant TTL + typed probes, snapshot =="
"$BIN" -addr "$ADDR" -data "$DATA" -walwindow 2ms &
SERVER_PID=$!
wait_ready
"$BIN" -loadgen -addr "$ADDR" -clients 8 -ops 500 -typed
# Plant probes (TTL pair plus one key per container kind) and cut a
# snapshot so the restart exercises snapshot-load + log-replay, not
# just replay.
"$BIN" -audit set -save -addr "$ADDR"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

echo "== phase 2: restart, then kill -9 mid-loadgen =="
# Scheduled snapshots every 400 logged records: the crash lands with
# the log mid-truncation cycle, so recovery proves snapshot + suffix
# replay under typed traffic, not just a cold log.
"$BIN" -addr "$ADDR" -data "$DATA" -walwindow 2ms -bgsave-every 400ops &
SERVER_PID=$!
wait_ready
# A deliberately oversized run with binary-hostile keys and typed
# containers in the mix: the server dies long before it finishes,
# mid-traffic.
"$BIN" -loadgen -addr "$ADDR" -clients 8 -ops 1000000 -binkeys -typed &
LOADGEN_PID=$!
sleep 3
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
kill "$LOADGEN_PID" 2>/dev/null || true
wait "$LOADGEN_PID" 2>/dev/null || true
LOADGEN_PID=

echo "== phase 3: restart and audit the restored state =="
"$BIN" -addr "$ADDR" -data "$DATA" -walwindow 2ms &
SERVER_PID=$!
wait_ready
"$BIN" -audit check -addr "$ADDR"
kill "$SERVER_PID" 2>/dev/null
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

echo "crash_smoke: ok"
