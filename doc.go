// Package repro is a Go reproduction of Guerraoui, Herlihy and Pochon,
// "Toward a Theory of Transactional Contention Managers" (PODC
// 2005/2006): an obstruction-free software transactional memory with a
// typed generic API (stm.Var[T] / Read / Write / Update / UpdateErr /
// Snapshot) and goroutine-agnostic execution (STM.Atomically over
// pooled sessions, with a per-session contention manager built by the
// STM's ManagerFactory) over a DSTM-style engine, pluggable contention
// managers (internal/stm, internal/core), the paper's benchmark data
// structures (internal/intset), a transactional container subsystem —
// hash set, FIFO queue and ordered map on Var[T], with a shared
// transactional-resize Table (internal/container) — a sharded
// TTL-aware key-value store and its RESP-lite protocol
// (internal/kv, internal/resp) served over TCP by cmd/stmkv, a
// durability subsystem — group-committed write-ahead log with CRC32C
// framing, point-in-time snapshots and torn-tail-tolerant recovery
// (internal/wal), hooked into the store through the engine's
// post-commit hook and replayed on boot by stmkv -data — the
// throughput harness with configurable lookup/insert/delete/range op
// mixes and key distributions (internal/harness, internal/workload),
// and the scheduling-theory side — task systems, list and optimal
// schedulers, the discrete transaction simulator, the Section 4
// adversary and the Lemma 7 graph machinery (internal/sched,
// internal/graph).
//
// The engine's transactional contracts (retry-safe bodies, no
// descriptor escape, no commit-hook re-entry) are machine-checked:
// run `go run ./cmd/stmlint ./...` — a go/analysis suite
// (internal/analysis) that CI requires to pass; deliberate
// violations carry //stm:impure(reason)-style suppressions (see
// DESIGN.md, "Static analysis").
//
// See DESIGN.md for the architecture (engine / sessions / typed
// facade / managers / containers / kv server / durability) and the
// hardware substitutions; cmd/stmbench (figures 1-9, -structure,
// -mix, -keys, -binkeys, tables, CSV and -json output), cmd/benchdiff
// (BENCH_*.json trajectory diffs, the cross-PR -trajectory table and
// its per-manager -slice), cmd/stmkv (the RESP-lite server — durable
// with -data — load generator, audit mode and CI smoke harness; see
// cmd/stmkv/README.md) and cmd/makespan for the experiment drivers;
// and examples/ for runnable programs (each verifies its own
// invariant and exits non-zero on violation, so CI smoke-runs them).
package repro
