// Command stmlint enforces the repository's transactional contracts:
// the engine-specific analyzers in internal/analysis (txpure,
// txescape, hookreentry) plus a selected set of upstream vet passes
// that matter for an STM codebase (atomics, lock copying, goroutine
// capture, channel misuse).
//
// Usage:
//
//	go run ./cmd/stmlint ./...
//	go run ./cmd/stmlint -unused-suppressions ./...
//
// Exit status is non-zero iff any diagnostic is reported, so CI can
// require it. -unused-suppressions additionally reports stale
// //stm:impure / //stm:escape / //stm:reentrant comments that no
// longer suppress anything.
//
// Mechanically the binary speaks the x/tools unitchecker protocol:
// when invoked by the go command (with -V=full or a *.cfg unit file)
// it behaves as a vet tool; when invoked with package patterns it
// re-executes itself as `go vet -vettool=<self> <patterns>`, which
// delegates package loading, export data and per-package caching to
// the build system — no network, no go/packages.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/bools"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/errorsas"
	"golang.org/x/tools/go/analysis/passes/loopclosure"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilfunc"
	"golang.org/x/tools/go/analysis/passes/sigchanyzer"
	"golang.org/x/tools/go/analysis/passes/stringintconv"
	"golang.org/x/tools/go/analysis/passes/unreachable"
	"golang.org/x/tools/go/analysis/passes/unusedresult"
	"golang.org/x/tools/go/analysis/unitchecker"

	stmanalysis "repro/internal/analysis"
)

// suite is every analyzer stmlint runs. The vet passes are the
// subset most relevant here: atomic/copylock/sigchanyzer guard the
// concurrency primitives the engine is built from, loopclosure and
// lostcancel guard goroutine capture in the server and harness, and
// the rest are cheap correctness nets that plain `go vet` also runs —
// harmless to duplicate, and they keep stmlint meaningful standalone.
var suite = []*analysis.Analyzer{
	stmanalysis.Txpure,
	stmanalysis.Txescape,
	stmanalysis.Hookreentry,
	atomic.Analyzer,
	bools.Analyzer,
	copylock.Analyzer,
	errorsas.Analyzer,
	loopclosure.Analyzer,
	lostcancel.Analyzer,
	nilfunc.Analyzer,
	sigchanyzer.Analyzer,
	stringintconv.Analyzer,
	unreachable.Analyzer,
	unusedresult.Analyzer,
}

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		unitchecker.Main(suite...) // does not return
	}

	fs := flag.NewFlagSet("stmlint", flag.ExitOnError)
	unused := fs.Bool("unused-suppressions", false,
		"also report //stm:* suppression comments that no longer suppress anything")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: stmlint [-unused-suppressions] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the stm transactional-contract analyzers (txpure, txescape,\nhookreentry) and selected vet passes over the given packages\n(default ./...).\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "stmlint: cannot locate own binary: %v\n", err)
		os.Exit(2)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	if *unused {
		for _, name := range []string{"txpure", "txescape", "hookreentry"} {
			vetArgs = append(vetArgs, fmt.Sprintf("-%s.unused-suppressions", name))
		}
	}
	vetArgs = append(vetArgs, patterns...)

	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "stmlint: go vet: %v\n", err)
		os.Exit(2)
	}
}

// vetProtocol reports whether the invocation comes from the go
// command's vet driver rather than a human: a -V=full version probe
// or a JSON unit config.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
