package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// trajEntry is one recorded PR in the trajectory file: a label and the
// per-figure median commits/s of its benchmark sweep. Figure keys are
// strings because JSON object keys are; figure 0 (points measured
// outside a figure sweep) is skipped at record time.
type trajEntry struct {
	Label   string             `json:"label"`
	Figures map[string]float64 `json:"figures"`
	// Managers slices each figure's points by contention manager
	// (figure → manager → median commits/s), so a manager-specific
	// regression is visible even when the figure's overall median
	// holds. Optional: entries recorded before the slice existed lack
	// it and render as dashes in -slice mode.
	Managers map[string]map[string]float64 `json:"managers,omitempty"`
}

// runTrajectory implements -trajectory: load the recorded entries,
// optionally aggregate a fresh run (appending it when -record LABEL is
// set), and print the figures × PRs table — or, with slice, the
// (figure, manager) × PRs table.
func runTrajectory(w io.Writer, path, record string, args []string, md, slice bool) error {
	if len(args) > 1 {
		return fmt.Errorf("-trajectory takes at most one RUN.json argument, got %d", len(args))
	}
	if record != "" && len(args) != 1 {
		return fmt.Errorf("-record needs the RUN.json to record")
	}
	entries, err := loadTrajectory(path)
	if err != nil {
		if !(record != "" && os.IsNotExist(err)) {
			return err
		}
		entries = nil // -record bootstraps a fresh trajectory file
	}
	if len(args) == 1 {
		pts, err := load(args[0])
		if err != nil {
			return err
		}
		label := "this run"
		if record != "" {
			label = record
		}
		entry := trajEntry{Label: label, Figures: aggregate(pts), Managers: aggregateManagers(pts)}
		if len(entry.Figures) == 0 {
			// A -structure sweep tags every point figure 0; recording it
			// would permanently reserve the label for an all-dash column.
			return fmt.Errorf("%s holds no figure-tagged points (use a -figure/-all sweep)", args[0])
		}
		for _, e := range entries {
			if e.Label == entry.Label {
				return fmt.Errorf("label %q already recorded in %s", entry.Label, path)
			}
		}
		entries = append(entries, entry)
		if record != "" {
			if err := writeTrajectory(path, entries); err != nil {
				return err
			}
		}
	}
	if len(entries) == 0 {
		return fmt.Errorf("%s holds no entries", path)
	}
	if slice {
		printTrajectorySlice(w, entries, md)
	} else {
		printTrajectory(w, entries, md)
	}
	return nil
}

func loadTrajectory(path string) ([]trajEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var entries []trajEntry
	if err := json.NewDecoder(f).Decode(&entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}

func writeTrajectory(path string, entries []trajEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// aggregate reduces a run's points to per-figure medians.
func aggregate(pts []point) map[string]float64 {
	byFig := map[string][]float64{}
	for _, p := range pts {
		if p.Figure == 0 {
			continue
		}
		key := strconv.Itoa(p.Figure)
		byFig[key] = append(byFig[key], p.CommitsPerSec)
	}
	out := make(map[string]float64, len(byFig))
	for fig, vals := range byFig {
		out[fig] = median(vals)
	}
	return out
}

// aggregateManagers reduces a run's points to per-figure, per-manager
// medians (across the thread sweep) — the -slice table's cells.
func aggregateManagers(pts []point) map[string]map[string]float64 {
	byFig := map[string]map[string][]float64{}
	for _, p := range pts {
		if p.Figure == 0 || p.Manager == "" {
			continue
		}
		key := strconv.Itoa(p.Figure)
		if byFig[key] == nil {
			byFig[key] = map[string][]float64{}
		}
		byFig[key][p.Manager] = append(byFig[key][p.Manager], p.CommitsPerSec)
	}
	out := make(map[string]map[string]float64, len(byFig))
	for fig, byMgr := range byFig {
		out[fig] = make(map[string]float64, len(byMgr))
		for mgr, vals := range byMgr {
			out[fig][mgr] = median(vals)
		}
	}
	return out
}

// median sorts vals in place and returns their median.
func median(vals []float64) float64 {
	sort.Float64s(vals)
	m := vals[len(vals)/2]
	if len(vals)%2 == 0 {
		m = (vals[len(vals)/2-1] + vals[len(vals)/2]) / 2
	}
	return m
}

// printTrajectory renders rows = figures, columns = recorded PRs, in
// file order — the cross-PR per-figure median table.
func printTrajectory(w io.Writer, entries []trajEntry, md bool) {
	figSet := map[int]bool{}
	for _, e := range entries {
		for k := range e.Figures {
			if n, err := strconv.Atoi(k); err == nil {
				figSet[n] = true
			}
		}
	}
	figs := make([]int, 0, len(figSet))
	for n := range figSet {
		figs = append(figs, n)
	}
	sort.Ints(figs)

	if md {
		fmt.Fprint(w, "| figure |")
		for _, e := range entries {
			fmt.Fprintf(w, " %s |", e.Label)
		}
		fmt.Fprint(w, "\n|---|")
		for range entries {
			fmt.Fprint(w, "---:|")
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprintf(w, "%-8s", "figure")
		for _, e := range entries {
			fmt.Fprintf(w, "%14s", e.Label)
		}
		fmt.Fprintln(w)
	}
	cell := func(e trajEntry, fig int) string {
		v, ok := e.Figures[strconv.Itoa(fig)]
		if !ok {
			return "-"
		}
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	for _, fig := range figs {
		if md {
			fmt.Fprintf(w, "| %d |", fig)
			for _, e := range entries {
				fmt.Fprintf(w, " %s |", cell(e, fig))
			}
			fmt.Fprintln(w)
		} else {
			fmt.Fprintf(w, "%-8d", fig)
			for _, e := range entries {
				fmt.Fprintf(w, "%14s", cell(e, fig))
			}
			fmt.Fprintln(w)
		}
	}
	if md {
		fmt.Fprintf(w, "\n**median commits/s per figure across %d recorded run(s)**\n", len(entries))
	} else {
		fmt.Fprintf(w, "median commits/s per figure across %d recorded run(s)\n", len(entries))
	}
}

// printTrajectorySlice renders the -slice view: rows = (figure,
// manager) pairs, columns = recorded PRs. Entries recorded before the
// per-manager slice existed (or runs that never measured a pair) show
// a dash.
func printTrajectorySlice(w io.Writer, entries []trajEntry, md bool) {
	type figMgr struct {
		fig int
		mgr string
	}
	rowSet := map[figMgr]bool{}
	for _, e := range entries {
		for k, byMgr := range e.Managers {
			n, err := strconv.Atoi(k)
			if err != nil {
				continue
			}
			for mgr := range byMgr {
				rowSet[figMgr{n, mgr}] = true
			}
		}
	}
	rows := make([]figMgr, 0, len(rowSet))
	for r := range rowSet {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].fig != rows[b].fig {
			return rows[a].fig < rows[b].fig
		}
		return rows[a].mgr < rows[b].mgr
	})

	if md {
		fmt.Fprint(w, "| figure | manager |")
		for _, e := range entries {
			fmt.Fprintf(w, " %s |", e.Label)
		}
		fmt.Fprint(w, "\n|---|---|")
		for range entries {
			fmt.Fprint(w, "---:|")
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprintf(w, "%-8s%-12s", "figure", "manager")
		for _, e := range entries {
			fmt.Fprintf(w, "%14s", e.Label)
		}
		fmt.Fprintln(w)
	}
	cell := func(e trajEntry, r figMgr) string {
		v, ok := e.Managers[strconv.Itoa(r.fig)][r.mgr]
		if !ok {
			return "-"
		}
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	for _, r := range rows {
		if md {
			fmt.Fprintf(w, "| %d | %s |", r.fig, r.mgr)
			for _, e := range entries {
				fmt.Fprintf(w, " %s |", cell(e, r))
			}
			fmt.Fprintln(w)
		} else {
			fmt.Fprintf(w, "%-8d%-12s", r.fig, r.mgr)
			for _, e := range entries {
				fmt.Fprintf(w, "%14s", cell(e, r))
			}
			fmt.Fprintln(w)
		}
	}
	if md {
		fmt.Fprintf(w, "\n**median commits/s per figure and manager across %d recorded run(s)**\n", len(entries))
	} else {
		fmt.Fprintf(w, "median commits/s per figure and manager across %d recorded run(s)\n", len(entries))
	}
}
