package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func TestDiffMatchingRuns(t *testing.T) {
	old := []point{
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 4, CommitsPerSec: 1000},
		{Figure: 5, Structure: "hashset", Manager: "karma", Threads: 4, Mix: "update", CommitsPerSec: 2000},
	}
	neu := []point{
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 4, CommitsPerSec: 1100},
		{Figure: 5, Structure: "hashset", Manager: "karma", Threads: 4, Mix: "update", CommitsPerSec: 1800},
	}
	var sb strings.Builder
	if missing := diff(&sb, old, neu, false); missing != 0 {
		t.Fatalf("missing = %d, want 0", missing)
	}
	out := sb.String()
	for _, want := range []string{"+10.0%", "-10.0%", "fig1 list/greedy x4", "fig5 hashset/karma x4 mix=update"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffReportsMissingPoints(t *testing.T) {
	old := []point{
		{Figure: 6, Structure: "queue", Manager: "greedy", Threads: 1, Mix: "update", CommitsPerSec: 500},
		{Figure: 6, Structure: "queue", Manager: "greedy", Threads: 4, Mix: "update", CommitsPerSec: 900},
	}
	neu := []point{
		{Figure: 6, Structure: "queue", Manager: "greedy", Threads: 1, Mix: "update", CommitsPerSec: 510},
	}
	var sb strings.Builder
	if missing := diff(&sb, old, neu, false); missing != 1 {
		t.Fatalf("missing = %d, want 1", missing)
	}
	if !strings.Contains(sb.String(), "MISSING") {
		t.Errorf("output does not flag the missing point:\n%s", sb.String())
	}
}

func TestDiffNewPointsAreNotFailures(t *testing.T) {
	old := []point{
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 1, CommitsPerSec: 100},
	}
	neu := []point{
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 1, CommitsPerSec: 100},
		{Figure: 7, Structure: "omap", Manager: "karma", Threads: 8, Mix: "mixed", CommitsPerSec: 300},
	}
	var sb strings.Builder
	if missing := diff(&sb, old, neu, false); missing != 0 {
		t.Fatalf("missing = %d, want 0 (new points are additive)", missing)
	}
	if !strings.Contains(sb.String(), "(new)") {
		t.Errorf("output does not mark the new point:\n%s", sb.String())
	}
}

func TestDiffMarkdownTable(t *testing.T) {
	old := []point{
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 64, CommitsPerSec: 1000},
		{Figure: 1, Structure: "list", Manager: "karma", Threads: 64, CommitsPerSec: 1000},
		{Figure: 2, Structure: "skiplist", Manager: "greedy", Threads: 128, CommitsPerSec: 400},
	}
	neu := []point{
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 64, CommitsPerSec: 1200},
		{Figure: 1, Structure: "list", Manager: "karma", Threads: 64, CommitsPerSec: 1010},
		{Figure: 2, Structure: "skiplist", Manager: "greedy", Threads: 128, CommitsPerSec: 300},
	}
	var sb strings.Builder
	if missing := diff(&sb, old, neu, true); missing != 0 {
		t.Fatalf("missing = %d, want 0", missing)
	}
	out := sb.String()
	for _, want := range []string{
		"| point | old commits/s | new commits/s | delta |",
		"|---|---:|---:|---:|",
		"| fig1 list/greedy x64 | 1000 | 1200 | +20.0% |",
		"| fig2 skiplist/greedy x128 | 400 | 300 | -25.0% |",
		"**3 compared: 1 improved, 1 regressed (|delta| >= 5%), median delta +1.0%; 0 new, 0 missing**",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffSummaryCountsAddedAndMissing(t *testing.T) {
	old := []point{
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 1, CommitsPerSec: 100},
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 4, CommitsPerSec: 200},
	}
	neu := []point{
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 1, CommitsPerSec: 100},
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 64, CommitsPerSec: 700},
	}
	var sb strings.Builder
	if missing := diff(&sb, old, neu, false); missing != 1 {
		t.Fatalf("missing = %d, want 1", missing)
	}
	if !strings.Contains(sb.String(), "1 compared: 0 improved, 0 regressed (|delta| >= 5%), median delta +0.0%; 1 new, 1 missing") {
		t.Errorf("summary line wrong:\n%s", sb.String())
	}
}

// TestTrajectoryAggregate pins the per-figure median reduction:
// figure 0 points are skipped, odd and even counts take the proper
// median.
func TestTrajectoryAggregate(t *testing.T) {
	pts := []point{
		{Figure: 1, CommitsPerSec: 10},
		{Figure: 1, CommitsPerSec: 30},
		{Figure: 1, CommitsPerSec: 20},
		{Figure: 2, CommitsPerSec: 100},
		{Figure: 2, CommitsPerSec: 300},
		{Figure: 0, CommitsPerSec: 999}, // outside any figure: skipped
	}
	got := aggregate(pts)
	if len(got) != 2 || got["1"] != 20 || got["2"] != 200 {
		t.Fatalf("aggregate = %v, want {1:20, 2:200}", got)
	}
}

// TestTrajectoryRoundTrip records two runs into a file and checks the
// rendered table: file order preserved, missing figures dashed, the
// duplicate-label guard, and the -record file rewrite.
func TestTrajectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	traj := dir + "/traj.json"
	if err := writeTrajectory(traj, []trajEntry{
		{Label: "pr4", Figures: map[string]float64{"1": 100, "2": 200}},
	}); err != nil {
		t.Fatal(err)
	}
	run := dir + "/run.json"
	if err := os.WriteFile(run, []byte(`[
		{"figure":1,"structure":"list","manager":"greedy","threads":1,"commits_per_sec":150},
		{"figure":8,"structure":"kv","manager":"greedy","threads":1,"commits_per_sec":50}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runTrajectory(&buf, traj, "pr5", []string{run}, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pr4", "pr5", "150", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// The file was rewritten with the new entry; recording the same
	// label again is rejected.
	entries, err := loadTrajectory(traj)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Label != "pr5" || entries[1].Figures["8"] != 50 {
		t.Fatalf("rewritten trajectory = %+v", entries)
	}
	if entries[1].Managers["8"]["greedy"] != 50 {
		t.Fatalf("recorded entry lacks manager slice: %+v", entries[1].Managers)
	}
	if err := runTrajectory(io.Discard, traj, "pr5", []string{run}, false, false); err == nil {
		t.Fatal("duplicate label accepted")
	}
	// Read-only mode: an unsaved run appears as a column without
	// touching the file.
	buf.Reset()
	if err := runTrajectory(&buf, traj, "", []string{run}, true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "this run") {
		t.Fatalf("markdown table missing unsaved column:\n%s", buf.String())
	}
	if entries, _ = loadTrajectory(traj); len(entries) != 2 {
		t.Fatalf("read-only mode rewrote the file: %+v", entries)
	}
}

// TestTrajectoryManagerSlice pins the -slice view: per-figure,
// per-manager medians across the thread sweep, with pre-slice entries
// (no managers map) rendered as dashes.
func TestTrajectoryManagerSlice(t *testing.T) {
	pts := []point{
		{Figure: 1, Manager: "greedy", Threads: 1, CommitsPerSec: 10},
		{Figure: 1, Manager: "greedy", Threads: 4, CommitsPerSec: 30},
		{Figure: 1, Manager: "karma", Threads: 1, CommitsPerSec: 100},
		{Figure: 0, Manager: "greedy", CommitsPerSec: 999}, // skipped
	}
	got := aggregateManagers(pts)
	if got["1"]["greedy"] != 20 || got["1"]["karma"] != 100 {
		t.Fatalf("aggregateManagers = %v", got)
	}
	if _, ok := got["0"]; ok {
		t.Fatal("figure 0 aggregated")
	}

	dir := t.TempDir()
	traj := dir + "/traj.json"
	if err := writeTrajectory(traj, []trajEntry{
		{Label: "pr4", Figures: map[string]float64{"1": 100}}, // pre-slice entry
		{Label: "pr5", Figures: map[string]float64{"1": 20}, Managers: got},
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runTrajectory(&buf, traj, "", nil, false, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"greedy", "karma", "20", "100", "-", "per figure and manager"} {
		if !strings.Contains(out, want) {
			t.Fatalf("slice table missing %q:\n%s", want, out)
		}
	}
}
