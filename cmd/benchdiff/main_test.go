package main

import (
	"strings"
	"testing"
)

func TestDiffMatchingRuns(t *testing.T) {
	old := []point{
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 4, CommitsPerSec: 1000},
		{Figure: 5, Structure: "hashset", Manager: "karma", Threads: 4, Mix: "update", CommitsPerSec: 2000},
	}
	neu := []point{
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 4, CommitsPerSec: 1100},
		{Figure: 5, Structure: "hashset", Manager: "karma", Threads: 4, Mix: "update", CommitsPerSec: 1800},
	}
	var sb strings.Builder
	if missing := diff(&sb, old, neu); missing != 0 {
		t.Fatalf("missing = %d, want 0", missing)
	}
	out := sb.String()
	for _, want := range []string{"+10.0%", "-10.0%", "fig1 list/greedy x4", "fig5 hashset/karma x4 mix=update"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffReportsMissingPoints(t *testing.T) {
	old := []point{
		{Figure: 6, Structure: "queue", Manager: "greedy", Threads: 1, Mix: "update", CommitsPerSec: 500},
		{Figure: 6, Structure: "queue", Manager: "greedy", Threads: 4, Mix: "update", CommitsPerSec: 900},
	}
	neu := []point{
		{Figure: 6, Structure: "queue", Manager: "greedy", Threads: 1, Mix: "update", CommitsPerSec: 510},
	}
	var sb strings.Builder
	if missing := diff(&sb, old, neu); missing != 1 {
		t.Fatalf("missing = %d, want 1", missing)
	}
	if !strings.Contains(sb.String(), "MISSING") {
		t.Errorf("output does not flag the missing point:\n%s", sb.String())
	}
}

func TestDiffNewPointsAreNotFailures(t *testing.T) {
	old := []point{
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 1, CommitsPerSec: 100},
	}
	neu := []point{
		{Figure: 1, Structure: "list", Manager: "greedy", Threads: 1, CommitsPerSec: 100},
		{Figure: 7, Structure: "omap", Manager: "karma", Threads: 8, Mix: "mixed", CommitsPerSec: 300},
	}
	var sb strings.Builder
	if missing := diff(&sb, old, neu); missing != 0 {
		t.Fatalf("missing = %d, want 0 (new points are additive)", missing)
	}
	if !strings.Contains(sb.String(), "(new)") {
		t.Errorf("output does not mark the new point:\n%s", sb.String())
	}
}
