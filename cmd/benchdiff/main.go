// Command benchdiff compares two `stmbench -json` outputs — the
// committed baseline (BENCH_baseline.json, refreshed each PR) against
// a fresh run (BENCH_pr.json in CI) — and prints per-point throughput
// deltas.
//
// Coverage is the contract, throughput is advisory: a point present in
// the baseline but missing from the new run means a structure, manager
// or thread count stopped being measured, and benchdiff exits 1.
// Throughput deltas are printed for trend-watching but never fail the
// run — CI machines vary far too much for a hard threshold.
//
// Usage:
//
//	benchdiff BENCH_baseline.json BENCH_pr.json
//	benchdiff -md BENCH_baseline.json BENCH_pr.json   # markdown table
//
// With -md the comparison is a GitHub-flavored markdown table plus a
// one-line summary (point counts, improved/regressed tally, median
// delta), so CI job logs and step summaries stay readable.
//
// Trajectory mode plots the cross-PR per-figure medians instead of a
// two-run diff: BENCH_trajectory.json holds one aggregate entry per
// recorded PR (label → figure → median commits/s), far smaller than
// keeping every historical BENCH_*.json:
//
//	benchdiff -trajectory BENCH_trajectory.json                # the table
//	benchdiff -trajectory BENCH_trajectory.json BENCH_pr.json  # + "this run" column
//	benchdiff -trajectory T.json -record pr5 BENCH_pr.json     # append + rewrite
//
// Medians are per figure across every (manager, threads) point, so the
// table tracks whole-scenario health, not one configuration's noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// point is the subset of harness.pointJSON benchdiff keys on and
// reports. Unknown fields are ignored, so the record can keep growing.
type point struct {
	Figure        int     `json:"figure"`
	Structure     string  `json:"structure"`
	Manager       string  `json:"manager"`
	Threads       int     `json:"threads"`
	Mix           string  `json:"mix"`
	KeyDist       string  `json:"key_dist"`
	CommitsPerSec float64 `json:"commits_per_sec"`
}

// key identifies a measured point across runs. KeyDist is part of the
// identity (empty = uniform, the historical default): a zipf point and
// a uniform point are different workloads, never a throughput delta.
type key struct {
	Figure    int
	Structure string
	Manager   string
	Threads   int
	Mix       string
	KeyDist   string
}

func (k key) String() string {
	s := fmt.Sprintf("fig%d %s/%s x%d", k.Figure, k.Structure, k.Manager, k.Threads)
	if k.Mix != "" {
		s += " mix=" + k.Mix
	}
	if k.KeyDist != "" {
		s += " keys=" + k.KeyDist
	}
	return s
}

func main() {
	md := flag.Bool("md", false, "emit a GitHub-flavored markdown table with a summary line")
	trajectory := flag.String("trajectory", "", "trajectory file: print the cross-PR per-figure table (one optional RUN.json arg adds a column)")
	record := flag.String("record", "", "with -trajectory: append RUN.json's aggregates under this label and rewrite the trajectory file")
	slice := flag.Bool("slice", false, "with -trajectory: slice each figure's medians by contention manager")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-md] OLD.json NEW.json")
		fmt.Fprintln(os.Stderr, "       benchdiff [-md] -trajectory TRAJ.json [-record LABEL] [-slice] [RUN.json]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *trajectory != "" {
		if err := runTrajectory(os.Stdout, *trajectory, *record, flag.Args(), *md, *slice); err != nil {
			fatal(err)
		}
		return
	}
	if *record != "" {
		fatal(fmt.Errorf("-record requires -trajectory"))
	}
	if *slice {
		fatal(fmt.Errorf("-slice requires -trajectory"))
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldPts, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newPts, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	missing := diff(os.Stdout, oldPts, newPts, *md)
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d baseline point(s) missing from the new run\n", missing)
		os.Exit(1)
	}
}

func load(path string) ([]point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pts []point
	if err := json.NewDecoder(f).Decode(&pts); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return pts, nil
}

// diff prints the old-vs-new comparison (aligned text, or markdown
// when md is set) followed by a summary line, and returns how many
// baseline points the new run no longer covers.
func diff(w io.Writer, oldPts, newPts []point, md bool) int {
	index := func(pts []point) map[key]float64 {
		m := make(map[key]float64, len(pts))
		for _, p := range pts {
			m[key{p.Figure, p.Structure, p.Manager, p.Threads, p.Mix, p.KeyDist}] = p.CommitsPerSec
		}
		return m
	}
	oldIdx, newIdx := index(oldPts), index(newPts)

	keys := make([]key, 0, len(oldIdx)+len(newIdx))
	for k := range oldIdx {
		keys = append(keys, k)
	}
	for k := range newIdx {
		if _, ok := oldIdx[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.Figure != kb.Figure {
			return ka.Figure < kb.Figure
		}
		if ka.Structure != kb.Structure {
			return ka.Structure < kb.Structure
		}
		if ka.Manager != kb.Manager {
			return ka.Manager < kb.Manager
		}
		if ka.Threads != kb.Threads {
			return ka.Threads < kb.Threads
		}
		if ka.Mix != kb.Mix {
			return ka.Mix < kb.Mix
		}
		return ka.KeyDist < kb.KeyDist
	})

	if md {
		fmt.Fprintln(w, "| point | old commits/s | new commits/s | delta |")
		fmt.Fprintln(w, "|---|---:|---:|---:|")
	} else {
		fmt.Fprintf(w, "%-44s %14s %14s %9s\n", "point", "old commits/s", "new commits/s", "delta")
	}
	row := func(name, old, new, delta string) {
		if md {
			fmt.Fprintf(w, "| %s | %s | %s | %s |\n", name, old, new, delta)
		} else {
			fmt.Fprintf(w, "%-44s %14s %14s %9s\n", name, old, new, delta)
		}
	}
	missing, added := 0, 0
	var deltas []float64
	for _, k := range keys {
		o, hasOld := oldIdx[k]
		n, hasNew := newIdx[k]
		switch {
		case hasOld && hasNew:
			delta := "n/a"
			if o > 0 {
				d := 100 * (n - o) / o
				deltas = append(deltas, d)
				delta = fmt.Sprintf("%+.1f%%", d)
			}
			row(k.String(), fmt.Sprintf("%.0f", o), fmt.Sprintf("%.0f", n), delta)
		case hasOld:
			missing++
			row(k.String(), fmt.Sprintf("%.0f", o), "MISSING", "")
		default:
			added++
			row(k.String(), "(new)", fmt.Sprintf("%.0f", n), "")
		}
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, summarize(deltas, added, missing, md))
	return missing
}

// summarize condenses the per-point deltas into one line: how many
// points moved meaningfully in each direction (±5%, below which CI
// runner noise dominates) and the median delta.
func summarize(deltas []float64, added, missing int, md bool) string {
	improved, regressed := 0, 0
	for _, d := range deltas {
		switch {
		case d >= 5:
			improved++
		case d <= -5:
			regressed++
		}
	}
	median := "n/a"
	if len(deltas) > 0 {
		s := append([]float64(nil), deltas...)
		sort.Float64s(s)
		m := s[len(s)/2]
		if len(s)%2 == 0 {
			m = (s[len(s)/2-1] + s[len(s)/2]) / 2
		}
		median = fmt.Sprintf("%+.1f%%", m)
	}
	line := fmt.Sprintf("%d compared: %d improved, %d regressed (|delta| >= 5%%), median delta %s; %d new, %d missing",
		len(deltas), improved, regressed, median, added, missing)
	if md {
		return "**" + line + "**\n"
	}
	return line + "\n"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
