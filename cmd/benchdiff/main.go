// Command benchdiff compares two `stmbench -json` outputs — the
// committed baseline (BENCH_baseline.json, refreshed each PR) against
// a fresh run (BENCH_pr.json in CI) — and prints per-point throughput
// deltas.
//
// Coverage is the contract, throughput is advisory: a point present in
// the baseline but missing from the new run means a structure, manager
// or thread count stopped being measured, and benchdiff exits 1.
// Throughput deltas are printed for trend-watching but never fail the
// run — CI machines vary far too much for a hard threshold.
//
// Usage:
//
//	benchdiff BENCH_baseline.json BENCH_pr.json
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// point is the subset of harness.pointJSON benchdiff keys on and
// reports. Unknown fields are ignored, so the record can keep growing.
type point struct {
	Figure        int     `json:"figure"`
	Structure     string  `json:"structure"`
	Manager       string  `json:"manager"`
	Threads       int     `json:"threads"`
	Mix           string  `json:"mix"`
	CommitsPerSec float64 `json:"commits_per_sec"`
}

// key identifies a measured point across runs.
type key struct {
	Figure    int
	Structure string
	Manager   string
	Threads   int
	Mix       string
}

func (k key) String() string {
	s := fmt.Sprintf("fig%d %s/%s x%d", k.Figure, k.Structure, k.Manager, k.Threads)
	if k.Mix != "" {
		s += " mix=" + k.Mix
	}
	return s
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(2)
	}
	oldPts, err := load(os.Args[1])
	if err != nil {
		fatal(err)
	}
	newPts, err := load(os.Args[2])
	if err != nil {
		fatal(err)
	}
	missing := diff(os.Stdout, oldPts, newPts)
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d baseline point(s) missing from the new run\n", missing)
		os.Exit(1)
	}
}

func load(path string) ([]point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pts []point
	if err := json.NewDecoder(f).Decode(&pts); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return pts, nil
}

// diff prints the old-vs-new comparison and returns how many baseline
// points the new run no longer covers.
func diff(w io.Writer, oldPts, newPts []point) int {
	index := func(pts []point) map[key]float64 {
		m := make(map[key]float64, len(pts))
		for _, p := range pts {
			m[key{p.Figure, p.Structure, p.Manager, p.Threads, p.Mix}] = p.CommitsPerSec
		}
		return m
	}
	oldIdx, newIdx := index(oldPts), index(newPts)

	keys := make([]key, 0, len(oldIdx)+len(newIdx))
	for k := range oldIdx {
		keys = append(keys, k)
	}
	for k := range newIdx {
		if _, ok := oldIdx[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.Figure != kb.Figure {
			return ka.Figure < kb.Figure
		}
		if ka.Structure != kb.Structure {
			return ka.Structure < kb.Structure
		}
		if ka.Manager != kb.Manager {
			return ka.Manager < kb.Manager
		}
		if ka.Threads != kb.Threads {
			return ka.Threads < kb.Threads
		}
		return ka.Mix < kb.Mix
	})

	fmt.Fprintf(w, "%-44s %14s %14s %9s\n", "point", "old commits/s", "new commits/s", "delta")
	missing := 0
	for _, k := range keys {
		o, hasOld := oldIdx[k]
		n, hasNew := newIdx[k]
		switch {
		case hasOld && hasNew:
			delta := "n/a"
			if o > 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(n-o)/o)
			}
			fmt.Fprintf(w, "%-44s %14.0f %14.0f %9s\n", k, o, n, delta)
		case hasOld:
			missing++
			fmt.Fprintf(w, "%-44s %14.0f %14s %9s\n", k, o, "MISSING", "")
		default:
			fmt.Fprintf(w, "%-44s %14s %14.0f %9s\n", k, "(new)", n, "")
		}
	}
	return missing
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
