package main

import (
	"fmt"
	"math/rand/v2"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resp"
	"repro/internal/workload"
)

// loadConfig parameterizes the closed-loop load generator.
type loadConfig struct {
	clients  int
	ops      int
	keyRange int
	keyDist  string
	accounts int
	transfer float64
	seed     uint64
	binKeys  bool
}

// client is one load-generator connection.
type client struct {
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
}

func dial(addr string) (*client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return newClient(conn), nil
}

func newClient(conn net.Conn) *client {
	return &client{conn: conn, r: resp.NewReader(conn), w: resp.NewWriter(conn)}
}

// do sends one command as an array frame and reads one reply.
func (c *client) do(args ...string) (resp.Value, error) {
	c.w.Array(len(args))
	for _, a := range args {
		c.w.Bulk(a)
	}
	if err := c.w.Flush(); err != nil {
		return resp.Value{}, err
	}
	return c.r.ReadReply()
}

// must runs do and turns error replies into errors.
func (c *client) must(args ...string) (resp.Value, error) {
	v, err := c.do(args...)
	if err != nil {
		return v, fmt.Errorf("%s: %w", fields(args), err)
	}
	if v.IsError() {
		return v, fmt.Errorf("%s: server error %q", fields(args), v.Str)
	}
	return v, nil
}

// counters aggregates what the generator actually did.
type counters struct {
	gets, sets, incrs, dels, mgets, transfers, expires atomic.Int64
}

// runLoadgen drives addr with cfg.clients closed-loop connections and
// verifies two invariants on the way out: every transfer account
// survives with the account total conserved (the MULTI/EXEC atomicity
// contract over real sockets), and no command ever yields an
// unexpected error reply.
func runLoadgen(addr string, cfg loadConfig) (string, error) {
	if cfg.clients < 1 || cfg.ops < 1 || cfg.accounts < 1 || cfg.keyRange < 1 {
		return "", fmt.Errorf("loadgen: need positive clients, ops, accounts and keyrange")
	}
	dist, err := workload.NewKeyDist(cfg.keyDist, cfg.keyRange)
	if err != nil {
		return "", err
	}
	// Precompute the string key universe once: the generator should
	// measure the server, not fmt.Sprintf. The binary table drives the
	// same mix through keys full of NULs, CRLFs and high bytes —
	// protocol framing, store hashing and WAL encoding must all be
	// length-prefixed, never delimiter-based, for this to survive.
	keys := make([]string, cfg.keyRange)
	for i := range keys {
		if cfg.binKeys {
			keys[i] = binKey(i)
		} else {
			keys[i] = fmt.Sprintf("key:%06d", i)
		}
	}
	const initial = 1000
	accounts := make([]string, cfg.accounts)
	seedConn, err := dial(addr)
	if err != nil {
		return "", err
	}
	msetArgs := []string{"MSET"}
	for i := range accounts {
		accounts[i] = fmt.Sprintf("acct:%d", i)
		msetArgs = append(msetArgs, accounts[i], strconv.Itoa(initial))
	}
	if _, err := seedConn.must(msetArgs...); err != nil {
		seedConn.conn.Close()
		return "", err
	}
	seedConn.conn.Close()

	var cnt counters
	var wg sync.WaitGroup
	errs := make([]error, cfg.clients)
	start := time.Now()
	for g := 0; g < cfg.clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = driveClient(addr, g, cfg, dist, keys, accounts, &cnt)
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return "", err
		}
	}

	// Conservation audit: one consistent MGET across the accounts.
	audit, err := dial(addr)
	if err != nil {
		return "", err
	}
	defer audit.conn.Close()
	v, err := audit.must(append([]string{"MGET"}, accounts...)...)
	if err != nil {
		return "", err
	}
	sum := 0
	for i, e := range v.Elems {
		if e.Null {
			return "", fmt.Errorf("loadgen: account %s vanished", accounts[i])
		}
		n, err := strconv.Atoi(e.Str)
		if err != nil {
			return "", fmt.Errorf("loadgen: account %s holds %q", accounts[i], e.Str)
		}
		sum += n
	}
	if want := cfg.accounts * initial; sum != want {
		return "", fmt.Errorf("loadgen: conservation broken: accounts sum to %d, want %d", sum, want)
	}

	total := int64(cfg.clients) * int64(cfg.ops)
	return fmt.Sprintf(
		"loadgen: %d ops over %d clients in %v (%.0f ops/sec; keys=%s)\n"+
			"  gets=%d sets=%d incrs=%d dels=%d mgets=%d expires=%d transfers=%d — accounts conserved",
		total, cfg.clients, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), dist.Name(),
		cnt.gets.Load(), cnt.sets.Load(), cnt.incrs.Load(), cnt.dels.Load(),
		cnt.mgets.Load(), cnt.expires.Load(), cnt.transfers.Load()), nil
}

// binKey builds a binary-hostile key: every byte class a text-based
// framing would choke on, plus the index so keys stay distinct.
func binKey(i int) string {
	return string([]byte{
		0x00, 0xff, '\r', '\n', 0x80, 'k',
		byte(i >> 16), byte(i >> 8), byte(i),
	})
}

// driveClient is one connection's closed loop: a transfer with
// probability cfg.transfer, otherwise a weighted singleton command on
// a distribution-drawn key.
func driveClient(addr string, g int, cfg loadConfig, dist workload.KeyDist, keys, accounts []string, cnt *counters) error {
	c, err := dial(addr)
	if err != nil {
		return err
	}
	defer c.conn.Close()
	rng := rand.New(rand.NewPCG(cfg.seed+uint64(g)+1, uint64(g)*0x9e37+7))
	for i := 0; i < cfg.ops; i++ {
		if rng.Float64() < cfg.transfer {
			if err := doTransfer(c, rng, accounts); err != nil {
				return err
			}
			cnt.transfers.Add(1)
			continue
		}
		key := keys[dist.Sample(rng)]
		switch rng.Int64N(10) {
		case 0, 1, 2: // 30% SET
			if _, err := c.must("SET", key, strconv.Itoa(i)); err != nil {
				return err
			}
			cnt.sets.Add(1)
		case 3: // 10% INCR on a dedicated integer namespace
			if _, err := c.must("INCR", "ctr:"+key); err != nil {
				return err
			}
			cnt.incrs.Add(1)
		case 4: // 10% DEL
			if _, err := c.must("DEL", key); err != nil {
				return err
			}
			cnt.dels.Add(1)
		case 5: // 10% MGET of a small neighbourhood
			k2 := keys[dist.Sample(rng)]
			k3 := keys[dist.Sample(rng)]
			if _, err := c.must("MGET", key, k2, k3); err != nil {
				return err
			}
			cnt.mgets.Add(1)
		case 6: // 10% short-TTL SET (exercises expiry under load)
			if _, err := c.must("SET", "tmp:"+key, "x", "PX", "5"); err != nil {
				return err
			}
			cnt.expires.Add(1)
		default: // 30% GET
			if _, err := c.must("GET", key); err != nil {
				return err
			}
			cnt.gets.Add(1)
		}
	}
	return nil
}

// doTransfer runs one MULTI/INCRBY/INCRBY/EXEC block and sanity-checks
// the replies: QUEUED twice, then an array of the two new balances.
func doTransfer(c *client, rng *rand.Rand, accounts []string) error {
	from := accounts[rng.Int64N(int64(len(accounts)))]
	to := accounts[rng.Int64N(int64(len(accounts)))]
	amount := strconv.FormatInt(rng.Int64N(20)+1, 10)
	if _, err := c.must("MULTI"); err != nil {
		return err
	}
	if v, err := c.must("INCRBY", from, "-"+amount); err != nil {
		return err
	} else if v.Str != "QUEUED" {
		return fmt.Errorf("transfer: INCRBY reply %+v, want QUEUED", v)
	}
	if v, err := c.must("INCRBY", to, amount); err != nil {
		return err
	} else if v.Str != "QUEUED" {
		return fmt.Errorf("transfer: INCRBY reply %+v, want QUEUED", v)
	}
	v, err := c.must("EXEC")
	if err != nil {
		return err
	}
	if len(v.Elems) != 2 || v.Elems[0].Kind != ':' || v.Elems[1].Kind != ':' {
		return fmt.Errorf("transfer: EXEC reply %+v, want two integers", v)
	}
	return nil
}
