package main

import (
	"fmt"
	"math/rand/v2"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/resp"
	"repro/internal/workload"
)

// loadConfig parameterizes the closed-loop load generator.
type loadConfig struct {
	clients  int
	ops      int
	keyRange int
	keyDist  string
	accounts int
	transfer float64
	seed     uint64
	binKeys  bool
	typed    bool
}

// client is one load-generator connection.
type client struct {
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
}

func dial(addr string) (*client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return newClient(conn), nil
}

func newClient(conn net.Conn) *client {
	return &client{conn: conn, r: resp.NewReader(conn), w: resp.NewWriter(conn)}
}

// do sends one command as an array frame and reads one reply.
func (c *client) do(args ...string) (resp.Value, error) {
	c.w.Array(len(args))
	for _, a := range args {
		c.w.Bulk(a)
	}
	if err := c.w.Flush(); err != nil {
		return resp.Value{}, err
	}
	return c.r.ReadReply()
}

// must runs do and turns error replies into errors.
func (c *client) must(args ...string) (resp.Value, error) {
	v, err := c.do(args...)
	if err != nil {
		return v, fmt.Errorf("%s: %w", fields(args), err)
	}
	if v.IsError() {
		return v, fmt.Errorf("%s: server error %q", fields(args), v.Str)
	}
	return v, nil
}

// counters aggregates what the generator actually did.
type counters struct {
	gets, sets, incrs, dels, mgets, transfers, expires atomic.Int64
	hincrs, pushes, pops, zadds                        atomic.Int64
}

// opLats is one client's client-side latency record: wall time from
// the first byte of the request to the last byte of the reply, one
// histogram per op kind. Each client owns its own (histograms are not
// concurrency-safe); runLoadgen merges them after the run. A transfer
// times the whole MULTI..EXEC conversation — that is the unit a
// caller waits for.
type opLats struct {
	get, set, incr, del, mget, expire, transfer, typed metrics.Histogram
}

// merge folds another client's record into this one.
func (l *opLats) merge(o *opLats) {
	l.get.Merge(&o.get)
	l.set.Merge(&o.set)
	l.incr.Merge(&o.incr)
	l.del.Merge(&o.del)
	l.mget.Merge(&o.mget)
	l.expire.Merge(&o.expire)
	l.transfer.Merge(&o.transfer)
	l.typed.Merge(&o.typed)
}

// report renders one "lat <kind> p50/p95/p99" line per op kind that
// ran. Quantiles are log2-bucket estimates (factor of two), which is
// exactly the resolution a closed-loop generator can honestly claim.
func (l *opLats) report() string {
	var b strings.Builder
	for _, e := range []struct {
		name string
		h    *metrics.Histogram
	}{
		{"get", &l.get}, {"set", &l.set}, {"incr", &l.incr}, {"del", &l.del},
		{"mget", &l.mget}, {"expire", &l.expire}, {"transfer", &l.transfer},
		{"typed", &l.typed},
	} {
		if e.h.Count() == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n  lat %-8s p50=%-10v p95=%-10v p99=%-10v (n=%d)",
			e.name,
			e.h.Quantile(0.50).Round(time.Microsecond),
			e.h.Quantile(0.95).Round(time.Microsecond),
			e.h.Quantile(0.99).Round(time.Microsecond),
			e.h.Count())
	}
	return b.String()
}

// runLoadgen drives addr with cfg.clients closed-loop connections and
// verifies two invariants on the way out: every transfer account
// survives with the account total conserved (the MULTI/EXEC atomicity
// contract over real sockets), and no command ever yields an
// unexpected error reply.
func runLoadgen(addr string, cfg loadConfig) (string, error) {
	if cfg.clients < 1 || cfg.ops < 1 || cfg.accounts < 1 || cfg.keyRange < 1 {
		return "", fmt.Errorf("loadgen: need positive clients, ops, accounts and keyrange")
	}
	dist, err := workload.NewKeyDist(cfg.keyDist, cfg.keyRange)
	if err != nil {
		return "", err
	}
	// Precompute the string key universe once: the generator should
	// measure the server, not fmt.Sprintf. The binary table drives the
	// same mix through keys full of NULs, CRLFs and high bytes —
	// protocol framing, store hashing and WAL encoding must all be
	// length-prefixed, never delimiter-based, for this to survive.
	keys := make([]string, cfg.keyRange)
	for i := range keys {
		if cfg.binKeys {
			keys[i] = binKey(i)
		} else {
			keys[i] = fmt.Sprintf("key:%06d", i)
		}
	}
	const initial = 1000
	accounts := make([]string, cfg.accounts)
	seedConn, err := dial(addr)
	if err != nil {
		return "", err
	}
	msetArgs := []string{"MSET"}
	for i := range accounts {
		accounts[i] = fmt.Sprintf("acct:%d", i)
		msetArgs = append(msetArgs, accounts[i], strconv.Itoa(initial))
	}
	if _, err := seedConn.must(msetArgs...); err != nil {
		seedConn.conn.Close()
		return "", err
	}
	if cfg.typed {
		// Typed conservation ledger: one shared hash of counter fields,
		// moved between by MULTI/HINCRBY/HINCRBY/EXEC blocks exactly like
		// the string accounts — the same atomicity contract, one value
		// kind deeper.
		args := []string{"HSET", typedStatsKey}
		for i := 0; i < cfg.accounts; i++ {
			args = append(args, "h:"+strconv.Itoa(i), strconv.Itoa(initial))
		}
		if _, err := seedConn.must(args...); err != nil {
			seedConn.conn.Close()
			return "", err
		}
	}
	seedConn.conn.Close()

	var cnt counters
	var wg sync.WaitGroup
	errs := make([]error, cfg.clients)
	lats := make([]opLats, cfg.clients)
	start := time.Now()
	for g := 0; g < cfg.clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = driveClient(addr, g, cfg, dist, keys, accounts, &cnt, &lats[g])
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return "", err
		}
	}
	var lat opLats
	for g := range lats {
		lat.merge(&lats[g])
	}

	// Conservation audit: one consistent MGET across the accounts.
	audit, err := dial(addr)
	if err != nil {
		return "", err
	}
	defer audit.conn.Close()
	v, err := audit.must(append([]string{"MGET"}, accounts...)...)
	if err != nil {
		return "", err
	}
	sum := 0
	for i, e := range v.Elems {
		if e.Null {
			return "", fmt.Errorf("loadgen: account %s vanished", accounts[i])
		}
		n, err := strconv.Atoi(e.Str)
		if err != nil {
			return "", fmt.Errorf("loadgen: account %s holds %q", accounts[i], e.Str)
		}
		sum += n
	}
	if want := cfg.accounts * initial; sum != want {
		return "", fmt.Errorf("loadgen: conservation broken: accounts sum to %d, want %d", sum, want)
	}
	typedNote := ""
	if cfg.typed {
		if err := auditTypedLedger(audit, cfg.accounts*initial); err != nil {
			return "", err
		}
		typedNote = fmt.Sprintf("\n  typed: hincrs=%d pushes=%d pops=%d zadds=%d — hash ledger conserved",
			cnt.hincrs.Load(), cnt.pushes.Load(), cnt.pops.Load(), cnt.zadds.Load())
	}

	total := int64(cfg.clients) * int64(cfg.ops)
	return fmt.Sprintf(
		"loadgen: %d ops over %d clients in %v (%.0f ops/sec; keys=%s)\n"+
			"  gets=%d sets=%d incrs=%d dels=%d mgets=%d expires=%d transfers=%d — accounts conserved%s%s",
		total, cfg.clients, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), dist.Name(),
		cnt.gets.Load(), cnt.sets.Load(), cnt.incrs.Load(), cnt.dels.Load(),
		cnt.mgets.Load(), cnt.expires.Load(), cnt.transfers.Load(), typedNote,
		lat.report()), nil
}

// typedStatsKey is the shared hash the typed workload's HINCRBY
// transfer blocks move value within.
const typedStatsKey = "stats:hash"

// auditTypedLedger checks the typed conservation invariant: the
// shared hash's counter fields sum to their seeded total, whatever
// interleaving the HINCRBY transfer blocks committed in.
func auditTypedLedger(c *client, want int) error {
	v, err := c.must("HGETALL", typedStatsKey)
	if err != nil {
		return err
	}
	if len(v.Elems)%2 != 0 {
		return fmt.Errorf("loadgen: HGETALL %s returned %d elems", typedStatsKey, len(v.Elems))
	}
	sum := 0
	for i := 0; i < len(v.Elems); i += 2 {
		n, err := strconv.Atoi(v.Elems[i+1].Str)
		if err != nil {
			return fmt.Errorf("loadgen: field %s holds %q", v.Elems[i].Str, v.Elems[i+1].Str)
		}
		sum += n
	}
	if sum != want {
		return fmt.Errorf("loadgen: typed conservation broken: %s sums to %d, want %d", typedStatsKey, sum, want)
	}
	return nil
}

// binKey builds a binary-hostile key: every byte class a text-based
// framing would choke on, plus the index so keys stay distinct.
func binKey(i int) string {
	return string([]byte{
		0x00, 0xff, '\r', '\n', 0x80, 'k',
		byte(i >> 16), byte(i >> 8), byte(i),
	})
}

// driveClient is one connection's closed loop: a transfer with
// probability cfg.transfer, otherwise a weighted singleton command on
// a distribution-drawn key. Every op's round-trip lands in lat.
func driveClient(addr string, g int, cfg loadConfig, dist workload.KeyDist, keys, accounts []string, cnt *counters, lat *opLats) error {
	c, err := dial(addr)
	if err != nil {
		return err
	}
	defer c.conn.Close()
	rng := rand.New(rand.NewPCG(cfg.seed+uint64(g)+1, uint64(g)*0x9e37+7))
	typed := typedState{g: g}
	if cfg.typed {
		// Reset this client's private containers: a durable server may
		// carry residue from an earlier run against the same directory,
		// and the FIFO/score verifications assume a known start.
		if _, err := c.must("DEL", "list:"+strconv.Itoa(g), "zset:"+strconv.Itoa(g)); err != nil {
			return err
		}
	}
	for i := 0; i < cfg.ops; i++ {
		if rng.Float64() < cfg.transfer {
			t0 := time.Now()
			if err := doTransfer(c, rng, accounts); err != nil {
				return err
			}
			lat.transfer.Observe(time.Since(t0))
			cnt.transfers.Add(1)
			continue
		}
		if cfg.typed && rng.Float64() < 0.4 {
			t0 := time.Now()
			if err := typed.step(c, rng, cfg, cnt); err != nil {
				return err
			}
			lat.typed.Observe(time.Since(t0))
			continue
		}
		key := keys[dist.Sample(rng)]
		t0 := time.Now()
		switch rng.Int64N(10) {
		case 0, 1, 2: // 30% SET
			if _, err := c.must("SET", key, strconv.Itoa(i)); err != nil {
				return err
			}
			lat.set.Observe(time.Since(t0))
			cnt.sets.Add(1)
		case 3: // 10% INCR on a dedicated integer namespace
			if _, err := c.must("INCR", "ctr:"+key); err != nil {
				return err
			}
			lat.incr.Observe(time.Since(t0))
			cnt.incrs.Add(1)
		case 4: // 10% DEL
			if _, err := c.must("DEL", key); err != nil {
				return err
			}
			lat.del.Observe(time.Since(t0))
			cnt.dels.Add(1)
		case 5: // 10% MGET of a small neighbourhood
			k2 := keys[dist.Sample(rng)]
			k3 := keys[dist.Sample(rng)]
			if _, err := c.must("MGET", key, k2, k3); err != nil {
				return err
			}
			lat.mget.Observe(time.Since(t0))
			cnt.mgets.Add(1)
		case 6: // 10% short-TTL SET (exercises expiry under load)
			if _, err := c.must("SET", "tmp:"+key, "x", "PX", "5"); err != nil {
				return err
			}
			lat.expire.Observe(time.Since(t0))
			cnt.expires.Add(1)
		default: // 30% GET
			if _, err := c.must("GET", key); err != nil {
				return err
			}
			lat.get.Observe(time.Since(t0))
			cnt.gets.Add(1)
		}
	}
	return nil
}

// typedState is one client's typed-workload bookkeeping: a private
// FIFO list and a private sorted set it can verify exactly (no other
// client touches them), plus its share of the contended ledger hash.
// Both private structures deliberately leave residue behind — pushed
// elements never popped, members never removed — so a durable smoke's
// restore comparison covers every container kind, not just strings.
type typedState struct {
	g        int
	nextPush int // next sequence number to RPUSH
	nextPop  int // next sequence number LPOP must return
	zseq     int // next zset member index
}

// element formats a list element or zset member: sequence number
// prefixed, binary-hostile when the run is a -binkeys sweep (the
// container chains and WAL field/value encoding must be
// length-prefixed too, not just the key path).
func (ts *typedState) element(seq int, binKeys bool) string {
	if binKeys {
		return string([]byte{0x00, '\r', 0xfe, 'e'}) + strconv.Itoa(seq)
	}
	return "e:" + strconv.Itoa(seq)
}

// step runs one typed operation: a hash-ledger transfer (contended,
// conservation-audited at the end), a FIFO push/pop round on the
// client's private list (order-verified inline), or a zset
// add/score/range round (score round-trip verified inline).
func (ts *typedState) step(c *client, rng *rand.Rand, cfg loadConfig, cnt *counters) error {
	listKey := "list:" + strconv.Itoa(ts.g)
	zsetKey := "zset:" + strconv.Itoa(ts.g)
	switch rng.Int64N(4) {
	case 0: // contended hash-ledger transfer
		from := "h:" + strconv.Itoa(int(rng.Int64N(int64(cfg.accounts))))
		to := "h:" + strconv.Itoa(int(rng.Int64N(int64(cfg.accounts))))
		amount := strconv.FormatInt(rng.Int64N(20)+1, 10)
		for _, cmd := range [][]string{
			{"MULTI"},
			{"HINCRBY", typedStatsKey, from, "-" + amount},
			{"HINCRBY", typedStatsKey, to, amount},
		} {
			if _, err := c.must(cmd...); err != nil {
				return err
			}
		}
		v, err := c.must("EXEC")
		if err != nil {
			return err
		}
		if len(v.Elems) != 2 || v.Elems[0].Kind != ':' || v.Elems[1].Kind != ':' {
			return fmt.Errorf("typed transfer: EXEC reply %+v, want two integers", v)
		}
		cnt.hincrs.Add(2)
	case 1: // FIFO push
		v, err := c.must("RPUSH", listKey, ts.element(ts.nextPush, cfg.binKeys))
		if err != nil {
			return err
		}
		if want := int64(ts.nextPush - ts.nextPop + 1); v.Int != want {
			return fmt.Errorf("typed: RPUSH %s returned len %d, want %d", listKey, v.Int, want)
		}
		ts.nextPush++
		cnt.pushes.Add(1)
	case 2: // FIFO pop: strict order on the private list
		if ts.nextPop == ts.nextPush {
			return nil // nothing outstanding; keep the loop closed
		}
		v, err := c.must("LPOP", listKey)
		if err != nil {
			return err
		}
		if want := ts.element(ts.nextPop, cfg.binKeys); v.Null || v.Str != want {
			return fmt.Errorf("typed: LPOP %s = %q (null=%v), want %q (FIFO order broken)",
				listKey, v.Str, v.Null, want)
		}
		ts.nextPop++
		cnt.pops.Add(1)
	default: // zset add + score round-trip
		member := ts.element(ts.zseq, cfg.binKeys)
		ts.zseq++
		score := strconv.FormatInt(rng.Int64N(1000), 10)
		if _, err := c.must("ZADD", zsetKey, score, member); err != nil {
			return err
		}
		v, err := c.must("ZSCORE", zsetKey, member)
		if err != nil {
			return err
		}
		if v.Null || v.Str != score {
			return fmt.Errorf("typed: ZSCORE %s %s = %q (null=%v), want %q",
				zsetKey, member, v.Str, v.Null, score)
		}
		cnt.zadds.Add(1)
	}
	return nil
}

// doTransfer runs one MULTI/INCRBY/INCRBY/EXEC block and sanity-checks
// the replies: QUEUED twice, then an array of the two new balances.
func doTransfer(c *client, rng *rand.Rand, accounts []string) error {
	from := accounts[rng.Int64N(int64(len(accounts)))]
	to := accounts[rng.Int64N(int64(len(accounts)))]
	amount := strconv.FormatInt(rng.Int64N(20)+1, 10)
	if _, err := c.must("MULTI"); err != nil {
		return err
	}
	if v, err := c.must("INCRBY", from, "-"+amount); err != nil {
		return err
	} else if v.Str != "QUEUED" {
		return fmt.Errorf("transfer: INCRBY reply %+v, want QUEUED", v)
	}
	if v, err := c.must("INCRBY", to, amount); err != nil {
		return err
	} else if v.Str != "QUEUED" {
		return fmt.Errorf("transfer: INCRBY reply %+v, want QUEUED", v)
	}
	v, err := c.must("EXEC")
	if err != nil {
		return err
	}
	if len(v.Elems) != 2 || v.Elems[0].Kind != ':' || v.Elems[1].Kind != ':' {
		return fmt.Errorf("transfer: EXEC reply %+v, want two integers", v)
	}
	return nil
}
