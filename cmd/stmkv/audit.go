package main

// The audit mode is the crash-restart smoke's measuring instrument
// (scripts/crash_smoke.sh): a one-shot client that checks the
// invariants a durable restart must preserve — account conservation
// across kill -9, and TTL semantics anchored to absolute deadlines —
// from outside the process, over the real wire.

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"time"
)

// dialRetry dials addr until it accepts or the deadline passes — a
// just-restarted server may still be replaying its log.
func dialRetry(addr string, wait time.Duration) (*client, error) {
	deadline := time.Now().Add(wait)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return newClient(conn), nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("audit: %s not reachable after %v: %w", addr, wait, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// checkTypedProbes verifies a previous "set"'s container probes after
// a restart: the list in push order, the hash field-for-field, the
// zset in score order with exact scores, and TYPE naming each kind —
// the wire-level version of the restore-equality gate, one key per
// container kind.
func checkTypedProbes(c *client) error {
	for key, want := range map[string]string{
		"probe:list": "list", "probe:hash": "hash", "probe:zset": "zset",
	} {
		v, err := c.must("TYPE", key)
		if err != nil {
			return err
		}
		if v.Str != want {
			return fmt.Errorf("audit: TYPE %s = %q, want %q (container kind lost across restart)", key, v.Str, want)
		}
	}
	v, err := c.must("LRANGE", "probe:list", "0", "-1")
	if err != nil {
		return err
	}
	if len(v.Elems) != 3 || v.Elems[0].Str != "a" || v.Elems[1].Str != "b" || v.Elems[2].Str != "c" {
		return fmt.Errorf("audit: probe:list = %+v, want [a b c] (list order lost across restart)", v.Elems)
	}
	v, err = c.must("HGETALL", "probe:hash")
	if err != nil {
		return err
	}
	fields := map[string]string{}
	for i := 0; i+1 < len(v.Elems); i += 2 {
		fields[v.Elems[i].Str] = v.Elems[i+1].Str
	}
	if len(fields) != 2 || fields["f1"] != "v1" || fields["f2"] != "v2" {
		return fmt.Errorf("audit: probe:hash = %v, want f1=v1 f2=v2 (hash fields lost across restart)", fields)
	}
	v, err = c.must("ZRANGE", "probe:zset", "0", "-1", "WITHSCORES")
	if err != nil {
		return err
	}
	if len(v.Elems) != 4 || v.Elems[0].Str != "alpha" || v.Elems[1].Str != "1.5" ||
		v.Elems[2].Str != "beta" || v.Elems[3].Str != "2.5" {
		return fmt.Errorf("audit: probe:zset = %+v, want alpha=1.5 beta=2.5 in score order", v.Elems)
	}
	if v, err = c.must("ZCARD", "probe:zset"); err != nil {
		return err
	} else if v.Int != 2 {
		return fmt.Errorf("audit: ZCARD probe:zset = %d, want 2", v.Int)
	}
	return nil
}

// runAudit connects to addr and verifies the durable invariants.
// Modes: "sum" checks account conservation; "set" additionally plants
// two TTL probes (one long-lived, one already doomed) and one key per
// container kind (list, hash, zset); "check" additionally verifies a
// previous "set"'s probes — the long TTL must survive with its
// deadline intact, the doomed one must be gone even though no sweep
// may have run before the crash, and every container probe must come
// back element-for-element with its kind. With save, a SAVE is issued
// at the end so the next restart boots from a snapshot.
func runAudit(addr, mode string, accounts int, save bool) error {
	if mode != "sum" && mode != "set" && mode != "check" {
		return fmt.Errorf("audit: unknown mode %q (want sum, set or check)", mode)
	}
	c, err := dialRetry(addr, 10*time.Second)
	if err != nil {
		return err
	}
	defer c.conn.Close()

	switch mode {
	case "set":
		if _, err := c.must("SET", "probe:keep", "kept", "EX", "1000"); err != nil {
			return err
		}
		if _, err := c.must("SET", "probe:gone", "soon", "PX", "80"); err != nil {
			return err
		}
		// Typed probes: one key of every container kind, planted before
		// the crash, verified element-for-element after the restart.
		if _, err := c.must("DEL", "probe:list", "probe:hash", "probe:zset"); err != nil {
			return err
		}
		if _, err := c.must("RPUSH", "probe:list", "a", "b", "c"); err != nil {
			return err
		}
		if _, err := c.must("HSET", "probe:hash", "f1", "v1", "f2", "v2"); err != nil {
			return err
		}
		if _, err := c.must("ZADD", "probe:zset", "1.5", "alpha", "2.5", "beta"); err != nil {
			return err
		}
	case "check":
		v, err := c.must("GET", "probe:keep")
		if err != nil {
			return err
		}
		if v.Null || v.Str != "kept" {
			return fmt.Errorf("audit: probe:keep = %q (null=%v), want \"kept\" (TTL key lost across restart)", v.Str, v.Null)
		}
		ttl, err := c.must("TTL", "probe:keep")
		if err != nil {
			return err
		}
		if ttl.Int <= 0 || ttl.Int > 1000 {
			return fmt.Errorf("audit: probe:keep TTL %d, want (0, 1000] (deadline not preserved)", ttl.Int)
		}
		gone, err := c.must("GET", "probe:gone")
		if err != nil {
			return err
		}
		if !gone.Null {
			return fmt.Errorf("audit: probe:gone resurrected as %q (expiry not honoured across restart)", gone.Str)
		}
		if err := checkTypedProbes(c); err != nil {
			return err
		}
	}

	// Conservation: one consistent MGET across the transfer accounts.
	args := []string{"MGET"}
	for i := 0; i < accounts; i++ {
		args = append(args, fmt.Sprintf("acct:%d", i))
	}
	v, err := c.must(args...)
	if err != nil {
		return err
	}
	sum := 0
	for i, e := range v.Elems {
		if e.Null {
			return fmt.Errorf("audit: account acct:%d vanished", i)
		}
		n, err := strconv.Atoi(e.Str)
		if err != nil {
			return fmt.Errorf("audit: account acct:%d holds %q", i, e.Str)
		}
		sum += n
	}
	if want := accounts * 1000; sum != want {
		return fmt.Errorf("audit: conservation broken: accounts sum to %d, want %d", sum, want)
	}
	// Typed-ledger conservation, when a -typed loadgen ran against this
	// store: HINCRBY transfer blocks are all-or-nothing too, so the
	// shared hash must sum to its seeded total across any crash. An
	// absent ledger (no typed run) is skipped, not an error.
	if v, err := c.must("HGETALL", typedStatsKey); err != nil {
		return err
	} else if len(v.Elems) > 0 {
		hsum := 0
		for i := 0; i+1 < len(v.Elems); i += 2 {
			n, err := strconv.Atoi(v.Elems[i+1].Str)
			if err != nil {
				return fmt.Errorf("audit: ledger field %s holds %q", v.Elems[i].Str, v.Elems[i+1].Str)
			}
			hsum += n
		}
		if want := accounts * 1000; hsum != want {
			return fmt.Errorf("audit: typed ledger broken: %s sums to %d, want %d", typedStatsKey, hsum, want)
		}
	}
	size, err := c.must("DBSIZE")
	if err != nil {
		return err
	}
	if save {
		if _, err := c.must("SAVE"); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "audit(%s): ok — %d accounts conserved (%d), dbsize %d, save=%v\n",
		mode, accounts, sum, size.Int, save)
	return nil
}
