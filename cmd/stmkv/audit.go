package main

// The audit mode is the crash-restart smoke's measuring instrument
// (scripts/crash_smoke.sh): a one-shot client that checks the
// invariants a durable restart must preserve — account conservation
// across kill -9, and TTL semantics anchored to absolute deadlines —
// from outside the process, over the real wire.

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"time"
)

// dialRetry dials addr until it accepts or the deadline passes — a
// just-restarted server may still be replaying its log.
func dialRetry(addr string, wait time.Duration) (*client, error) {
	deadline := time.Now().Add(wait)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return newClient(conn), nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("audit: %s not reachable after %v: %w", addr, wait, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// runAudit connects to addr and verifies the durable invariants.
// Modes: "sum" checks account conservation; "set" additionally plants
// two TTL probes (one long-lived, one already doomed); "check"
// additionally verifies a previous "set"'s probes — the long one must
// survive with its deadline intact, the doomed one must be gone even
// though no sweep may have run before the crash. With save, a SAVE is
// issued at the end so the next restart boots from a snapshot.
func runAudit(addr, mode string, accounts int, save bool) error {
	if mode != "sum" && mode != "set" && mode != "check" {
		return fmt.Errorf("audit: unknown mode %q (want sum, set or check)", mode)
	}
	c, err := dialRetry(addr, 10*time.Second)
	if err != nil {
		return err
	}
	defer c.conn.Close()

	switch mode {
	case "set":
		if _, err := c.must("SET", "probe:keep", "kept", "EX", "1000"); err != nil {
			return err
		}
		if _, err := c.must("SET", "probe:gone", "soon", "PX", "80"); err != nil {
			return err
		}
	case "check":
		v, err := c.must("GET", "probe:keep")
		if err != nil {
			return err
		}
		if v.Null || v.Str != "kept" {
			return fmt.Errorf("audit: probe:keep = %q (null=%v), want \"kept\" (TTL key lost across restart)", v.Str, v.Null)
		}
		ttl, err := c.must("TTL", "probe:keep")
		if err != nil {
			return err
		}
		if ttl.Int <= 0 || ttl.Int > 1000 {
			return fmt.Errorf("audit: probe:keep TTL %d, want (0, 1000] (deadline not preserved)", ttl.Int)
		}
		gone, err := c.must("GET", "probe:gone")
		if err != nil {
			return err
		}
		if !gone.Null {
			return fmt.Errorf("audit: probe:gone resurrected as %q (expiry not honoured across restart)", gone.Str)
		}
	}

	// Conservation: one consistent MGET across the transfer accounts.
	args := []string{"MGET"}
	for i := 0; i < accounts; i++ {
		args = append(args, fmt.Sprintf("acct:%d", i))
	}
	v, err := c.must(args...)
	if err != nil {
		return err
	}
	sum := 0
	for i, e := range v.Elems {
		if e.Null {
			return fmt.Errorf("audit: account acct:%d vanished", i)
		}
		n, err := strconv.Atoi(e.Str)
		if err != nil {
			return fmt.Errorf("audit: account acct:%d holds %q", i, e.Str)
		}
		sum += n
	}
	if want := accounts * 1000; sum != want {
		return fmt.Errorf("audit: conservation broken: accounts sum to %d, want %d", sum, want)
	}
	size, err := c.must("DBSIZE")
	if err != nil {
		return err
	}
	if save {
		if _, err := c.must("SAVE"); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "audit(%s): ok — %d accounts conserved (%d), dbsize %d, save=%v\n",
		mode, accounts, sum, size.Int, save)
	return nil
}
