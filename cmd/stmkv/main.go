// Command stmkv serves the transactional key-value store over a
// RESP-lite protocol (see README.md for usage and the wire surface),
// and doubles as its own closed-loop load generator and CI smoke
// harness.
//
// Modes:
//
//	stmkv                          # serve on -addr (default :6399)
//	stmkv -data DIR                # serve durably: recover, then log + snapshot
//	stmkv -loadgen -addr HOST:PORT # drive an already-running server
//	stmkv -audit check ...         # one-shot invariant probe of a live server
//	stmkv -smoke                   # in-process server + loadgen + invariants
//
// The server runs one goroutine per connection; every command borrows
// a pooled STM session (PR 2's goroutine-agnostic surface), so
// concurrent clients commit in parallel under the striped commit
// protocol, arbitrated by the contention manager named with -manager.
// With -data, committed write sets are group-committed to a write-ahead
// log and SAVE/BGSAVE cut snapshots that truncate it (DESIGN.md
// §Durability).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/obs"
	"repro/internal/stm"
	"repro/internal/wal"
)

func main() {
	var (
		addr    = flag.String("addr", ":6399", "listen address (serve) or target address (-loadgen/-audit)")
		manager = flag.String("manager", "greedy", "contention manager registry name (see stmbench -list)")
		shards  = flag.Int("shards", 16, "store shard count (rounded up to a power of two)")
		buckets = flag.Int("buckets", 8, "initial buckets per shard (shards grow on demand)")

		metrics   = flag.String("metrics", "", "observability HTTP listener serving /metrics, /healthz and /debug/pprof (empty disables)")
		txtrace   = flag.Int("txtrace", 0, "transaction flight recorder: sample 1 in N transactions into ABORTLOG and /debug/stm/conflicts (0 disables)")
		data      = flag.String("data", "", "durability directory: recover on boot, then write-ahead log every commit (empty = memory only)")
		walWindow = flag.Duration("walwindow", 500*time.Microsecond, "group-commit linger window (negative disables lingering)")
		sweep     = flag.Duration("sweep", 500*time.Millisecond, "background TTL sweep cadence for a full pass over all shards (0 disables)")
		bgsave    = flag.String("bgsave-every", "", "scheduled BGSAVE cadence: a duration (\"30s\") or a logged-record count (\"500ops\"); empty disables (durable mode only)")

		loadgen  = flag.Bool("loadgen", false, "run the closed-loop load generator against -addr instead of serving")
		smoke    = flag.Bool("smoke", false, "start an in-process server on an ephemeral port, run the load generator against it, verify invariants, shut down")
		clients  = flag.Int("clients", 8, "load generator: concurrent connections")
		ops      = flag.Int("ops", 2000, "load generator: operations per connection")
		keyRange = flag.Int("keyrange", 512, "load generator: key universe size")
		keyDist  = flag.String("keys", "zipf", "load generator: key distribution (uniform, zipf, zipf:<s>)")
		accounts = flag.Int("accounts", 8, "load generator: transfer accounts (conservation-checked)")
		transfer = flag.Float64("transfer", 0.2, "load generator: fraction of ops that are MULTI/EXEC transfers")
		seed     = flag.Uint64("seed", 0x5eed, "load generator: workload seed")
		binKeys  = flag.Bool("binkeys", false, "load generator: use a binary-hostile key table (NULs, CRLFs, high bytes)")
		typed    = flag.Bool("typed", false, "load generator: mix in typed-container traffic (hash-ledger transfers, FIFO lists, zset round-trips)")

		audit = flag.String("audit", "", "audit a live server at -addr: sum (conservation), set (plant TTL probes too), check (verify probes too)")
		save  = flag.Bool("save", false, "audit: issue SAVE before exiting")
	)
	flag.Parse()
	modes := 0
	for _, on := range []bool{*loadgen, *smoke, *audit != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "stmkv: -loadgen, -smoke and -audit are mutually exclusive")
		os.Exit(2)
	}
	lcfg := loadConfig{
		clients:  *clients,
		ops:      *ops,
		keyRange: *keyRange,
		keyDist:  *keyDist,
		accounts: *accounts,
		transfer: *transfer,
		seed:     *seed,
		binKeys:  *binKeys,
		typed:    *typed,
	}
	switch {
	case *loadgen:
		report, err := runLoadgen(*addr, lcfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report)
	case *audit != "":
		if err := runAudit(*addr, *audit, *accounts, *save); err != nil {
			fatal(err)
		}
	case *smoke:
		if err := runSmoke(*manager, *shards, *buckets, *data, *walWindow, *sweep, *bgsave, *txtrace, lcfg); err != nil {
			fatal(err)
		}
	default:
		if err := serve(*addr, *metrics, *manager, *shards, *buckets, *data, *walWindow, *sweep, *bgsave, *txtrace); err != nil {
			fatal(err)
		}
	}
}

// traceState bundles the flight-recorder sinks when -txtrace is on:
// the conflict matrix served at /debug/stm/conflicts and the ABORTLOG
// ring served over RESP. Nil when tracing is disabled.
type traceState struct {
	conflicts *obs.Conflicts
	abortlog  *kv.AbortLog
}

// serverOpts returns the server options that hand the sinks to kv.
func (tr *traceState) serverOpts() []kv.ServerOption {
	if tr == nil {
		return nil
	}
	return []kv.ServerOption{kv.WithAbortLog(tr.abortlog)}
}

// muxOpts returns the obs.Mux options that mount the HTTP endpoints.
func (tr *traceState) muxOpts() []obs.MuxOption {
	if tr == nil {
		return nil
	}
	return []obs.MuxOption{obs.WithConflicts(tr.conflicts)}
}

// openStore builds the store, and in durable mode replays the data
// directory into it before attaching a fresh log segment. The returned
// log is nil in memory-only mode; the caller owns closing it after the
// server quiesces. txtrace > 0 installs the transaction flight
// recorder, sampling 1 in txtrace transactions into the returned
// traceState (nil when disabled).
func openStore(manager string, shards, buckets int, data string, window time.Duration, txtrace int) (*kv.Store, *wal.Log, *traceState, error) {
	factory, err := core.Factory(manager)
	if err != nil {
		return nil, nil, nil, err
	}
	stmOpts := []stm.Option{stm.WithManagerFactory(factory)}
	var tr *traceState
	if txtrace > 0 {
		tr = &traceState{
			conflicts: obs.NewConflicts(manager),
			abortlog:  kv.NewAbortLog(128),
		}
		stmOpts = append(stmOpts,
			stm.WithTracer(stm.Tee(tr.conflicts, tr.abortlog), txtrace),
			stm.WithRuntimeTrace())
	}
	s := stm.New(stmOpts...)
	opts := []kv.Option{kv.WithShards(shards), kv.WithBuckets(buckets)}
	if data != "" {
		// Anchor the store clock to the unix epoch so the absolute TTL
		// deadlines in the log mean the same thing after a restart.
		opts = append(opts, kv.WithClock(func() int64 { return time.Now().UnixNano() }))
	}
	store := kv.New(s, opts...)
	if data == "" {
		return store, nil, tr, nil
	}
	rst, err := wal.Recover(data, store.Apply)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("recover %s: %w", data, err)
	}
	fmt.Fprintf(os.Stderr,
		"stmkv: recovered %s — snapshot %d ops (base %d), %d segments, %d records (%d ops), torn tail %d bytes\n",
		data, rst.SnapshotOps, rst.Base, rst.Segments, rst.Records, rst.Ops, rst.TruncatedBytes)
	l, err := wal.Open(data, wal.Options{GroupWindow: window})
	if err != nil {
		return nil, nil, nil, err
	}
	store.AttachWAL(l)
	return store, l, tr, nil
}

// startSweeper launches the background TTL sweeper: one shard per
// tick, with the tick jittered around cadence/shards so a full pass
// takes roughly cadence without phase-locking against client traffic.
// Sweeps run through Store.SweepShard, so reaped keys are tombstoned
// in the WAL and replay agrees with the reap. Failures and reaped-key
// counts feed the server's registry (INFO stats, /metrics) as well as
// stderr.
func startSweeper(srv *kv.Server, store *kv.Store, cadence time.Duration, seed uint64) (stop func()) {
	if cadence <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(seed, 0x5ee9))
		per := cadence / time.Duration(store.Shards())
		if per < time.Millisecond {
			per = time.Millisecond
		}
		timer := time.NewTimer(per)
		defer timer.Stop()
		shard := 0
		for {
			select {
			case <-done:
				return
			case <-timer.C:
			}
			if reaped, err := store.SweepShard(shard); err != nil {
				srv.NoteSweepFailure()
				fmt.Fprintf(os.Stderr, "stmkv: sweep shard %d: %v\n", shard, err)
			} else if reaped > 0 {
				srv.NoteSweepReaped(reaped)
			}
			shard = (shard + 1) % store.Shards()
			timer.Reset(time.Duration(float64(per) * (0.75 + 0.5*rng.Float64())))
		}
	}()
	return func() { close(done); wg.Wait() }
}

// startBgsave schedules background snapshots on a cadence given as
// either a duration ("30s": wall-clock ticker) or a record count
// ("500ops": a snapshot once at least that many new records reached
// the log since the last cut, polled coarsely). Each trigger runs
// Store.Save — the same rotate → cut → rename → reap path as an
// explicit BGSAVE — so the log is continuously truncated and a
// restart replays a bounded suffix. Failures are counted in the
// server's registry and logged, and the schedule keeps running: a
// snapshot that loses a race with traffic just tries again next
// period.
func startBgsave(srv *kv.Server, store *kv.Store, spec string) (stop func(), err error) {
	if spec == "" {
		return func() {}, nil
	}
	if !store.Durable() {
		return nil, fmt.Errorf("-bgsave-every requires -data")
	}
	var (
		every   time.Duration
		everyN  int64
		lastN   = store.WAL().Stats().Records
		trigger func() bool
	)
	if n, ok := strings.CutSuffix(spec, "ops"); ok {
		parsed, perr := strconv.ParseInt(strings.TrimSpace(n), 10, 64)
		if perr != nil || parsed <= 0 {
			return nil, fmt.Errorf("-bgsave-every %q: want a positive count before \"ops\"", spec)
		}
		everyN = parsed
		every = 100 * time.Millisecond // poll cadence, not save cadence
		trigger = func() bool {
			records := store.WAL().Stats().Records
			if records-lastN < everyN {
				return false
			}
			lastN = records
			return true
		}
	} else {
		every, err = time.ParseDuration(spec)
		if err != nil || every <= 0 {
			return nil, fmt.Errorf("-bgsave-every %q: want a positive duration or \"<n>ops\"", spec)
		}
		trigger = func() bool { return true }
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			if !trigger() {
				continue
			}
			if err := store.Save(); err != nil {
				srv.NoteBgsaveFailure()
				fmt.Fprintf(os.Stderr, "stmkv: bgsave: %v\n", err)
			}
		}
	}()
	return func() { close(done); wg.Wait() }, nil
}

// startMetrics serves the observability endpoints — Prometheus
// /metrics, liveness /healthz, /debug/pprof — from the server's
// registry on its own listener, so scraping and profiling never
// contend with the RESP accept loop. Health turns red when the WAL
// has latched a sticky error: the process answers but is no longer
// durable, which a probe should treat as down. Empty addr disables;
// the resolved address (useful with ":0") and a stop func are
// returned.
func startMetrics(addr string, srv *kv.Server, store *kv.Store, tr *traceState) (string, func(), error) {
	if addr == "" {
		return "", func() {}, nil
	}
	health := func() error {
		if store.Durable() {
			return store.WAL().Err()
		}
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics listener: %w", err)
	}
	hs := &http.Server{Handler: obs.Mux(srv.Registry(), health, tr.muxOpts()...)}
	go hs.Serve(ln)
	return ln.Addr().String(), func() { hs.Close() }, nil
}

// serve runs the server until SIGINT/SIGTERM, then shuts down cleanly:
// listener and connections first, then the sweeper and the snapshot
// schedule, then the log.
func serve(addr, metrics, manager string, shards, buckets int, data string, window, sweep time.Duration, bgsave string, txtrace int) error {
	store, l, tr, err := openStore(manager, shards, buckets, data, window, txtrace)
	if err != nil {
		return err
	}
	srv := kv.NewServer(store, append([]kv.ServerOption{kv.WithManagerName(manager)}, tr.serverOpts()...)...)
	stopSave, err := startBgsave(srv, store, bgsave)
	if err != nil {
		return err
	}
	maddr, stopMetrics, err := startMetrics(metrics, srv, store, tr)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stmkv: serving on %s (manager=%s shards=%d buckets=%d durable=%v bgsave=%q metrics=%q)\n",
		ln.Addr(), manager, store.Shards(), buckets, store.Durable(), bgsave, maddr)
	stopSweep := startSweeper(srv, store, sweep, 0x51eeb)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	shutdown := func(serveErr error) error {
		stopSweep()
		stopSave()
		stopMetrics()
		if l != nil {
			if err := l.Close(); err != nil && serveErr == nil {
				serveErr = fmt.Errorf("wal close: %w", err)
			}
		}
		return serveErr
	}
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "stmkv: %v, shutting down\n", sig)
		if err := srv.Close(); err != nil {
			return shutdown(err)
		}
		return shutdown(<-done)
	case err := <-done:
		return shutdown(err)
	}
}

// runSmoke is the CI path: a real server on an ephemeral port, the
// load generator driving it over real sockets, then invariant checks
// and a clean shutdown. With -data it additionally gates the group
// commit's fsync amortization (fsyncs per committed record < 0.1) and
// proves the restore path: the directory is recovered — without
// closing the log, as a crash would leave it — into a fresh store
// that must match the pre-shutdown state exactly. Any violation exits
// non-zero through main.
func runSmoke(manager string, shards, buckets int, data string, window, sweep time.Duration, bgsave string, txtrace int, lcfg loadConfig) error {
	// The smoke gates the flight recorder end to end, so it is always
	// on here; a dense sampling period makes the loadgen storm fill it.
	if txtrace <= 0 {
		txtrace = 4
	}
	store, l, tr, err := openStore(manager, shards, buckets, data, window, txtrace)
	if err != nil {
		return err
	}
	srv := kv.NewServer(store, append([]kv.ServerOption{kv.WithManagerName(manager)}, tr.serverOpts()...)...)
	stopSave, err := startBgsave(srv, store, bgsave)
	if err != nil {
		return err
	}
	stopSave = sync.OnceFunc(stopSave)
	defer stopSave()
	maddr, stopMetrics, err := startMetrics("127.0.0.1:0", srv, store, tr)
	if err != nil {
		return err
	}
	defer stopMetrics()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	stopSweep := sync.OnceFunc(startSweeper(srv, store, sweep, lcfg.seed))
	defer stopSweep()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	report, err := runLoadgen(ln.Addr().String(), lcfg)
	if err != nil {
		return fmt.Errorf("smoke: loadgen: %w", err)
	}
	fmt.Println(report)

	// The observability surface is a smoke gate too: the exposition
	// must parse back, the storm must be visible in the command
	// counters, and health and pprof must answer.
	if err := smokeMetrics("http://" + maddr); err != nil {
		return fmt.Errorf("smoke: %w", err)
	}

	// And so is the flight recorder: the conflict matrix must serve
	// parseable JSON that saw the storm, and ABORTLOG must answer over
	// RESP.
	if err := smokeTrace("http://"+maddr, ln.Addr().String()); err != nil {
		return fmt.Errorf("smoke: %w", err)
	}

	// The store must be structurally sound after the storm, and the
	// expiry backstop must run clean.
	if err := store.CheckInvariants(); err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	reaped, err := store.Sweep()
	if err != nil {
		return fmt.Errorf("smoke: sweep: %w", err)
	}
	n, err := store.Len()
	if err != nil {
		return fmt.Errorf("smoke: len: %w", err)
	}
	stats := store.STM().TotalStats()
	fmt.Printf("smoke: ok — %d live keys, %d reaped, shard buckets %v, %d commits (abort rate %.2f)\n",
		n, reaped, store.BucketsPerShard(), stats.Commits, stats.AbortRate())

	if l != nil {
		// Quiesce the background writers first: a scheduled BGSAVE
		// rotating and reaping segments — or a sweeper pass appending
		// tombstones — while Recover scans the directory hands the
		// comparison a torn view of the log.
		stopSweep()
		stopSave()
		if err := smokeDurability(store, l, lcfg); err != nil {
			return err
		}
	}

	if err := srv.Close(); err != nil {
		return fmt.Errorf("smoke: close: %w", err)
	}
	if err := <-done; err != nil {
		return fmt.Errorf("smoke: serve returned: %w", err)
	}
	stopSweep()
	// A second Close must be a no-op, and the port must be free again.
	if err := srv.Close(); err != nil {
		return fmt.Errorf("smoke: double close: %w", err)
	}
	probe, err := net.Listen("tcp", ln.Addr().String())
	if err != nil {
		return fmt.Errorf("smoke: port not released: %w", err)
	}
	probe.Close()
	if l != nil {
		if err := l.Close(); err != nil {
			return fmt.Errorf("smoke: wal close: %w", err)
		}
	}
	return nil
}

// smokeMetrics gates the observability surface under -smoke: /metrics
// must serve a well-formed exposition that records the loadgen storm
// (nonzero stmkv_commands_total across commands), /healthz must be
// green, and pprof must be reachable. Runs against the in-process
// metrics listener over a real HTTP round trip, same as a scraper.
func smokeMetrics(base string) error {
	get := func(path string) ([]byte, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return nil, fmt.Errorf("metrics: GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("metrics: read %s: %w", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("metrics: GET %s: status %d (%s)", path, resp.StatusCode, body)
		}
		return body, nil
	}
	body, err := get("/metrics")
	if err != nil {
		return err
	}
	samples, err := obs.CheckExposition(body)
	if err != nil {
		return fmt.Errorf("metrics: exposition malformed: %w", err)
	}
	var commands float64
	for name, v := range samples {
		if strings.HasPrefix(name, "stmkv_commands_total{") {
			commands += v
		}
	}
	if commands == 0 {
		return fmt.Errorf("metrics: stmkv_commands_total is zero after the loadgen storm")
	}
	if _, err := get("/healthz"); err != nil {
		return err
	}
	if _, err := get("/debug/pprof/cmdline"); err != nil {
		return err
	}
	fmt.Printf("smoke: metrics ok — %d samples parsed back, %.0f commands counted, healthz and pprof answering\n",
		len(samples), commands)
	return nil
}

// smokeTrace gates the transaction flight recorder end to end: the
// conflict matrix at /debug/stm/conflicts must parse as JSON and have
// sampled the loadgen storm (the smoke always arms -txtrace), the text
// form must answer, and ABORTLOG must answer LEN with an integer and
// GET with a well-formed array over RESP.
func smokeTrace(base, addr string) error {
	resp, err := http.Get(base + "/debug/stm/conflicts")
	if err != nil {
		return fmt.Errorf("trace: GET conflicts: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace: GET conflicts: status %d (%v)", resp.StatusCode, err)
	}
	var snap struct {
		Manager    string           `json:"manager"`
		SampledTxs int64            `json:"sampled_txs"`
		Causes     map[string]int64 `json:"abort_causes"`
		HotObjects []struct {
			Obj   string `json:"obj"`
			Opens int64  `json:"opens"`
		} `json:"hot_objects"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("trace: conflicts not parseable JSON: %w", err)
	}
	if snap.Manager == "" {
		return fmt.Errorf("trace: conflicts snapshot names no manager")
	}
	if snap.SampledTxs == 0 {
		return fmt.Errorf("trace: no transactions sampled during the storm")
	}
	if len(snap.HotObjects) == 0 {
		return fmt.Errorf("trace: no hot objects attributed during the storm")
	}
	if resp, err = http.Get(base + "/debug/stm/conflicts?format=text&top=5"); err != nil {
		return fmt.Errorf("trace: GET conflicts text: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace: GET conflicts text: status %d", resp.StatusCode)
	}

	c, err := dial(addr)
	if err != nil {
		return fmt.Errorf("trace: dial: %w", err)
	}
	defer c.conn.Close()
	v, err := c.must("ABORTLOG", "LEN")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	held := v.Int
	if v, err = c.must("ABORTLOG", "GET", "5"); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for _, e := range v.Elems {
		if len(e.Elems) != 9 {
			return fmt.Errorf("trace: ABORTLOG entry has %d fields, want 9", len(e.Elems))
		}
	}
	fmt.Printf("smoke: trace ok — %d txs sampled (hot: %s), %d abort causes, abortlog holds %d\n",
		snap.SampledTxs, snap.HotObjects[0].Obj, len(snap.Causes), held)
	return nil
}

// smokeDurability checks the two durable-mode acceptance gates after
// the loadgen storm: group commit must amortize fsyncs across
// committed records, and recovering the directory as-is (no clean
// shutdown of the log) must reproduce the live state.
func smokeDurability(store *kv.Store, l *wal.Log, lcfg loadConfig) error {
	st := l.Stats()
	if st.Records == 0 {
		return fmt.Errorf("smoke: wal: no records logged under load")
	}
	ratio := float64(st.Fsyncs) / float64(st.Records)
	fmt.Printf("smoke: wal — %d records in %d batches, %d fsyncs (%.4f fsyncs/record, gate <0.1), %d dropped\n",
		st.Records, st.Batches, st.Fsyncs, ratio, st.Dropped)
	if ratio >= 0.1 {
		return fmt.Errorf("smoke: wal: fsyncs per record %.4f, want < 0.1 (group commit not amortizing)", ratio)
	}

	// Let every short-TTL loadgen key cross its deadline so the
	// pre/post state comparison is not racing expiry.
	time.Sleep(20 * time.Millisecond)
	pre, err := store.SnapshotOps()
	if err != nil {
		return fmt.Errorf("smoke: snapshot ops: %w", err)
	}
	fresh := kv.New(stm.New(), kv.WithShards(store.Shards()),
		kv.WithClock(func() int64 { return time.Now().UnixNano() }))
	if _, err := wal.Recover(l.Dir(), fresh.Apply); err != nil {
		return fmt.Errorf("smoke: recover: %w", err)
	}
	post, err := fresh.SnapshotOps()
	if err != nil {
		return fmt.Errorf("smoke: restored snapshot ops: %w", err)
	}
	sortOps(pre)
	sortOps(post)
	if diff := diffOps(pre, post); diff != "" {
		return fmt.Errorf("smoke: restore mismatch: %s", diff)
	}
	sum := 0
	for i := 0; i < lcfg.accounts; i++ {
		v, ok, err := fresh.Get(fmt.Sprintf("acct:%d", i))
		if err != nil || !ok {
			return fmt.Errorf("smoke: restored account %d missing (%v)", i, err)
		}
		var n int
		fmt.Sscan(v, &n)
		sum += n
	}
	if want := lcfg.accounts * 1000; sum != want {
		return fmt.Errorf("smoke: restored conservation broken: %d, want %d", sum, want)
	}
	if lcfg.typed {
		// The typed ledger must conserve through recovery too: the hash
		// replays field by field, so a lost or doubled HINCRBY would
		// break the sum even when the op-for-op comparison above passed
		// (it compares against the live store, not the ground truth).
		pairs, err := fresh.HGetAll(typedStatsKey)
		if err != nil {
			return fmt.Errorf("smoke: restored typed ledger: %w", err)
		}
		hsum := 0
		for _, p := range pairs {
			var n int
			if _, err := fmt.Sscan(p.V, &n); err != nil {
				return fmt.Errorf("smoke: restored ledger field %s holds %q", p.K, p.V)
			}
			hsum += n
		}
		if want := lcfg.accounts * 1000; hsum != want {
			return fmt.Errorf("smoke: restored typed ledger broken: %d, want %d", hsum, want)
		}
	}
	fmt.Printf("smoke: restore ok — %d live entries reproduced, accounts conserved (typed=%v)\n", len(post), lcfg.typed)
	return nil
}

// sortOps orders ops by key, stably: SnapshotOps emits each key's op
// sequence in a canonical order, so a stable by-key sort makes two
// dumps of the same logical state comparable.
func sortOps(ops []wal.Op) {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })
}

// diffOps reports the first divergence between two sorted op dumps —
// naming the key, kind and values on both sides — or "" if they
// match. A bare length mismatch is useless in a flake report; the
// offending key is what lets the failure be diagnosed post-hoc.
func diffOps(pre, post []wal.Op) string {
	n := min(len(pre), len(post))
	for i := 0; i < n; i++ {
		if pre[i] != post[i] {
			return fmt.Sprintf("at index %d: live %+v, restored %+v", i, pre[i], post[i])
		}
	}
	switch {
	case len(pre) > n:
		return fmt.Sprintf("%d restored entries, want %d; first live-only op %+v", len(post), len(pre), pre[n])
	case len(post) > n:
		return fmt.Sprintf("%d restored entries, want %d; first restored-only op %+v", len(post), len(pre), post[n])
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stmkv:", err)
	os.Exit(1)
}

// fields joins a command's words for error reporting.
func fields(args []string) string { return strings.Join(args, " ") }
