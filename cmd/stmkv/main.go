// Command stmkv serves the transactional key-value store over a
// RESP-lite protocol (see README.md for usage and the wire surface),
// and doubles as its own closed-loop load generator and CI smoke
// harness.
//
// Modes:
//
//	stmkv                          # serve on -addr (default :6399)
//	stmkv -loadgen -addr HOST:PORT # drive an already-running server
//	stmkv -smoke                   # in-process server + loadgen + invariants
//
// The server runs one goroutine per connection; every command borrows
// a pooled STM session (PR 2's goroutine-agnostic surface), so
// concurrent clients commit in parallel under the striped commit
// protocol, arbitrated by the contention manager named with -manager.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/stm"
)

func main() {
	var (
		addr    = flag.String("addr", ":6399", "listen address (serve) or target address (-loadgen)")
		manager = flag.String("manager", "greedy", "contention manager registry name (see stmbench -list)")
		shards  = flag.Int("shards", 16, "store shard count (rounded up to a power of two)")
		buckets = flag.Int("buckets", 8, "initial buckets per shard (shards grow on demand)")

		loadgen  = flag.Bool("loadgen", false, "run the closed-loop load generator against -addr instead of serving")
		smoke    = flag.Bool("smoke", false, "start an in-process server on an ephemeral port, run the load generator against it, verify invariants, shut down")
		clients  = flag.Int("clients", 8, "load generator: concurrent connections")
		ops      = flag.Int("ops", 2000, "load generator: operations per connection")
		keyRange = flag.Int("keyrange", 512, "load generator: key universe size")
		keyDist  = flag.String("keys", "zipf", "load generator: key distribution (uniform, zipf, zipf:<s>)")
		accounts = flag.Int("accounts", 8, "load generator: transfer accounts (conservation-checked)")
		transfer = flag.Float64("transfer", 0.2, "load generator: fraction of ops that are MULTI/EXEC transfers")
		seed     = flag.Uint64("seed", 0x5eed, "load generator: workload seed")
	)
	flag.Parse()
	if *loadgen && *smoke {
		fmt.Fprintln(os.Stderr, "stmkv: -loadgen and -smoke are mutually exclusive")
		os.Exit(2)
	}
	lcfg := loadConfig{
		clients:  *clients,
		ops:      *ops,
		keyRange: *keyRange,
		keyDist:  *keyDist,
		accounts: *accounts,
		transfer: *transfer,
		seed:     *seed,
	}
	switch {
	case *loadgen:
		report, err := runLoadgen(*addr, lcfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report)
	case *smoke:
		if err := runSmoke(*manager, *shards, *buckets, lcfg); err != nil {
			fatal(err)
		}
	default:
		if err := serve(*addr, *manager, *shards, *buckets); err != nil {
			fatal(err)
		}
	}
}

// serve runs the server until SIGINT/SIGTERM, then shuts down cleanly.
func serve(addr, manager string, shards, buckets int) error {
	factory, err := core.Factory(manager)
	if err != nil {
		return err
	}
	s := stm.New(stm.WithManagerFactory(factory))
	store := kv.New(s, kv.WithShards(shards), kv.WithBuckets(buckets))
	srv := kv.NewServer(store)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stmkv: serving on %s (manager=%s shards=%d buckets=%d)\n",
		ln.Addr(), manager, store.Shards(), buckets)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "stmkv: %v, shutting down\n", sig)
		if err := srv.Close(); err != nil {
			return err
		}
		return <-done
	case err := <-done:
		return err
	}
}

// runSmoke is the CI path: a real server on an ephemeral port, the
// load generator driving it over real sockets, then invariant checks
// and a clean shutdown. Any violation exits non-zero through main.
func runSmoke(manager string, shards, buckets int, lcfg loadConfig) error {
	factory, err := core.Factory(manager)
	if err != nil {
		return err
	}
	s := stm.New(stm.WithManagerFactory(factory))
	store := kv.New(s, kv.WithShards(shards), kv.WithBuckets(buckets))
	srv := kv.NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	report, err := runLoadgen(ln.Addr().String(), lcfg)
	if err != nil {
		return fmt.Errorf("smoke: loadgen: %w", err)
	}
	fmt.Println(report)

	// The store must be structurally sound after the storm, and the
	// expiry backstop must run clean.
	if err := store.CheckInvariants(); err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	reaped, err := store.Sweep()
	if err != nil {
		return fmt.Errorf("smoke: sweep: %w", err)
	}
	n, err := store.Len()
	if err != nil {
		return fmt.Errorf("smoke: len: %w", err)
	}
	stats := s.TotalStats()
	fmt.Printf("smoke: ok — %d live keys, %d reaped, shard buckets %v, %d commits (abort rate %.2f)\n",
		n, reaped, store.BucketsPerShard(), stats.Commits, stats.AbortRate())

	if err := srv.Close(); err != nil {
		return fmt.Errorf("smoke: close: %w", err)
	}
	if err := <-done; err != nil {
		return fmt.Errorf("smoke: serve returned: %w", err)
	}
	// A second Close must be a no-op, and the port must be free again.
	if err := srv.Close(); err != nil {
		return fmt.Errorf("smoke: double close: %w", err)
	}
	probe, err := net.Listen("tcp", ln.Addr().String())
	if err != nil {
		return fmt.Errorf("smoke: port not released: %w", err)
	}
	probe.Close()
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stmkv:", err)
	os.Exit(1)
}

// fields joins a command's words for error reporting.
func fields(args []string) string { return strings.Join(args, " ") }
