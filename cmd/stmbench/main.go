// Command stmbench regenerates the paper's evaluation figures: for
// each figure it sweeps the number of threads and prints committed
// transactions per second per contention manager — the same series
// Figures 1–4 plot.
//
// Usage:
//
//	stmbench -figure 1                 # one figure
//	stmbench -all                      # all four figures
//	stmbench -figure 4 -csv            # machine-readable output (CSV)
//	stmbench -all -json                # machine-readable output (JSON array)
//	stmbench -figure 2 -threads 1,4,8 -duration 200ms -managers greedy,karma
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/plot"
)

func main() {
	var (
		figureID = flag.Int("figure", 0, "figure number to run (1-4)")
		all      = flag.Bool("all", false, "run all four figures")
		duration = flag.Duration("duration", 300*time.Millisecond, "measurement window per point")
		warmup   = flag.Duration("warmup", 50*time.Millisecond, "warmup per point")
		threads  = flag.String("threads", "", "comma-separated thread counts (default: the figure's 1..32 sweep)")
		managers = flag.String("managers", "", "comma-separated manager names (default: the figure's five series)")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		jsonOut  = flag.Bool("json", false, "emit a JSON array of per-point results instead of a table")
		chart    = flag.Bool("plot", false, "render an ASCII chart of each figure (with the table)")
		audit    = flag.Bool("audit", false, "verify structural integrity after every point")
		keyDist  = flag.String("keys", "uniform", "key distribution: uniform, zipf, zipf:<s>")
		seed     = flag.Uint64("seed", 0x5eed, "workload seed")
		list     = flag.Bool("list", false, "list figures and managers, then exit")
	)
	flag.Parse()

	if *csvOut && *jsonOut {
		fmt.Fprintln(os.Stderr, "stmbench: -csv and -json are mutually exclusive")
		os.Exit(2)
	}

	if *list {
		fmt.Println("figures:")
		for _, fig := range harness.Figures {
			fmt.Printf("  %d: %s (structure=%s)\n", fig.ID, fig.Name, fig.Structure)
		}
		fmt.Printf("managers: %s\n", strings.Join(core.Names(), ", "))
		return
	}

	var ids []int
	switch {
	case *all:
		for _, fig := range harness.Figures {
			ids = append(ids, fig.ID)
		}
	case *figureID != 0:
		ids = []int{*figureID}
	default:
		fmt.Fprintln(os.Stderr, "stmbench: pass -figure N or -all (see -list)")
		os.Exit(2)
	}

	opts := harness.FigureOptions{
		Duration: *duration,
		Warmup:   *warmup,
		Seed:     *seed,
		Audit:    *audit,
		KeyDist:  *keyDist,
	}
	if *threads != "" {
		ts, err := parseInts(*threads)
		if err != nil {
			fatal(err)
		}
		opts.Threads = ts
	}
	if *managers != "" {
		opts.Managers = strings.Split(*managers, ",")
	}
	machine := *csvOut || *jsonOut
	if !machine {
		opts.Progress = func(p harness.Point) {
			fmt.Fprintf(os.Stderr, "  %-10s %-12s x%-3d %10.0f commits/s (abort rate %.2f)\n",
				p.Structure, p.Manager, p.Threads, p.CommitsPerSec, p.AbortRate)
		}
	}

	// jsonPoints accumulates across figures so the whole run is one
	// JSON array; RunFigure stamps each point with its figure id.
	var jsonPoints []harness.Point
	for _, id := range ids {
		fig, err := harness.FigureByID(id)
		if err != nil {
			fatal(err)
		}
		if !machine {
			fmt.Fprintf(os.Stderr, "running figure %d: %s\n", fig.ID, fig.Name)
		}
		points, err := harness.RunFigure(fig, opts)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			jsonPoints = append(jsonPoints, points...)
			continue
		}
		if *csvOut {
			if err := harness.WriteCSV(os.Stdout, points); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Println()
		title := fmt.Sprintf("Figure %d: %s", fig.ID, fig.Name)
		if err := harness.WriteTable(os.Stdout, title, points); err != nil {
			fatal(err)
		}
		if *chart {
			fmt.Println()
			if err := renderChart(title, points); err != nil {
				fatal(err)
			}
		}
	}
	if *jsonOut {
		if err := harness.WriteJSON(os.Stdout, jsonPoints); err != nil {
			fatal(err)
		}
	}
}

// renderChart draws the figure's series as an ASCII line chart, the
// terminal rendition of the paper's plots.
func renderChart(title string, points []harness.Point) error {
	order := []string{}
	seen := map[string]bool{}
	byMgr := map[string]*plot.Series{}
	for _, p := range points {
		if !seen[p.Manager] {
			seen[p.Manager] = true
			order = append(order, p.Manager)
			byMgr[p.Manager] = &plot.Series{Name: p.Manager}
		}
		s := byMgr[p.Manager]
		s.X = append(s.X, float64(p.Threads))
		s.Y = append(s.Y, p.CommitsPerSec)
	}
	series := make([]plot.Series, 0, len(order))
	for _, name := range order {
		series = append(series, *byMgr[name])
	}
	return plot.Render(os.Stdout, series, plot.Options{
		Title:  title,
		XLabel: "threads",
		YLabel: "committed tx/sec",
	})
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("stmbench: bad thread count %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stmbench:", err)
	os.Exit(1)
}
