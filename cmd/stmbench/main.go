// Command stmbench regenerates the paper's evaluation figures and the
// container-subsystem extensions: for each figure it sweeps the number
// of threads and prints committed transactions per second per
// contention manager — the same series Figures 1–4 plot, plus the
// hash-set, queue and ordered-map sweeps (figures 5–7).
//
// Usage:
//
//	stmbench -figure 1                 # one figure
//	stmbench -all                      # all figures (paper + containers)
//	stmbench -structure omap           # sweep one structure by name
//	stmbench -structure queue -mix rangeheavy
//	stmbench -figure 4 -csv            # machine-readable output (CSV)
//	stmbench -all -json                # machine-readable output (JSON array)
//	stmbench -figure 2 -threads 1,4,8 -window 200ms -managers greedy,karma
//	stmbench -figure 10 -threads 64 -txtrace 16 -json   # conflict attribution
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/plot"
)

func main() {
	var (
		figureID  = flag.Int("figure", 0, "figure number to run (1-7, see -list)")
		all       = flag.Bool("all", false, "run every figure")
		structure = flag.String("structure", "", "sweep one structure by name (list, skiplist, rbtree, rbforest, hashset, queue, omap)")
		duration  = flag.Duration("duration", 300*time.Millisecond, "measurement window per point (alias of -window)")
		window    = flag.Duration("window", 0, "measurement window per point; overrides -duration when set")
		warmup    = flag.Duration("warmup", 50*time.Millisecond, "warmup per point (runs before the window opens; not measured)")
		txtrace   = flag.Int("txtrace", 0, "sample 1 in N transactions into the flight recorder: points gain abort-cause breakdown and top-K hot vars (0 disables)")
		threads   = flag.String("threads", "", "comma-separated thread counts (default: the figure's 1..32 sweep)")
		managers  = flag.String("managers", "", "comma-separated manager names (default: the figure's five series)")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		jsonOut   = flag.Bool("json", false, "emit a JSON array of per-point results instead of a table")
		chart     = flag.Bool("plot", false, "render an ASCII chart of each figure (with the table)")
		audit     = flag.Bool("audit", false, "verify structural integrity after every point")
		keyDist   = flag.String("keys", "", "key distribution: uniform, zipf, zipf:<s> (default: the figure's own, uniform unless stated)")
		mix       = flag.String("mix", "", "container op mix: update, readheavy, mixed, rangeheavy, w:l,i,d,r (containers only)")
		binKeys   = flag.Bool("binkeys", false, "kv structures: use a binary-hostile key table (NULs, CRLFs, high bytes)")
		seed      = flag.Uint64("seed", 0x5eed, "workload seed")
		list      = flag.Bool("list", false, "list figures, structures and managers, then exit")
	)
	flag.Parse()

	if *csvOut && *jsonOut {
		usage("-csv and -json are mutually exclusive")
	}
	// -window is the measurement window's proper name (the warmup runs
	// before it opens); -duration predates it and stays as an alias.
	if *window > 0 {
		*duration = *window
	}

	if *list {
		fmt.Println("figures:")
		for _, fig := range harness.Figures {
			fmt.Printf("  %d: %s (structure=%s)\n", fig.ID, fig.Name, fig.Structure)
		}
		fmt.Printf("structures: %s\n", strings.Join(harness.Structures(), ", "))
		fmt.Printf("managers: %s\n", strings.Join(core.Names(), ", "))
		fmt.Printf("mixes: update, readheavy, mixed, rangeheavy, w:<l>,<i>,<d>,<r>\n")
		return
	}

	figures, err := selectFigures(*all, *figureID, *structure)
	if err != nil {
		usage(err.Error())
	}

	opts := harness.FigureOptions{
		Duration:   *duration,
		Warmup:     *warmup,
		Seed:       *seed,
		Audit:      *audit,
		KeyDist:    *keyDist,
		Mix:        *mix,
		BinaryKeys: *binKeys,
		TxTrace:    *txtrace,
	}
	if *threads != "" {
		ts, err := parseInts(*threads)
		if err != nil {
			fatal(err)
		}
		opts.Threads = ts
	}
	if *managers != "" {
		opts.Managers = strings.Split(*managers, ",")
	}
	machine := *csvOut || *jsonOut
	if !machine {
		opts.Progress = func(p harness.Point) {
			hot := ""
			if len(p.HotVars) > 0 {
				hot = "  hot=" + p.HotVars[0].Obj
			}
			fmt.Fprintf(os.Stderr, "  %-10s %-12s x%-3d %10.0f commits/s (abort rate %.2f)%s\n",
				p.Structure, p.Manager, p.Threads, p.CommitsPerSec, p.AbortRate, hot)
		}
	}

	// jsonPoints accumulates across figures so the whole run is one
	// JSON array; RunFigure stamps each point with its figure id.
	var jsonPoints []harness.Point
	for _, fig := range figures {
		if !machine {
			if fig.ID != 0 {
				fmt.Fprintf(os.Stderr, "running figure %d: %s\n", fig.ID, fig.Name)
			} else {
				fmt.Fprintf(os.Stderr, "running %s\n", fig.Name)
			}
		}
		points, err := harness.RunFigure(fig, opts)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			jsonPoints = append(jsonPoints, points...)
			continue
		}
		if *csvOut {
			if err := harness.WriteCSV(os.Stdout, points); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Println()
		title := fig.Name
		if fig.ID != 0 {
			title = fmt.Sprintf("Figure %d: %s", fig.ID, fig.Name)
		}
		if err := harness.WriteTable(os.Stdout, title, points); err != nil {
			fatal(err)
		}
		if *chart {
			fmt.Println()
			if err := renderChart(title, points); err != nil {
				fatal(err)
			}
		}
	}
	if *jsonOut {
		if err := harness.WriteJSON(os.Stdout, jsonPoints); err != nil {
			fatal(err)
		}
	}
}

// selectFigures resolves the -all / -figure / -structure selection
// into the figures to run, rejecting unknown or ambiguous selections
// so a typo never silently measures the wrong thing.
func selectFigures(all bool, figureID int, structure string) ([]harness.Figure, error) {
	selected := 0
	if all {
		selected++
	}
	if figureID != 0 {
		selected++
	}
	if structure != "" {
		selected++
	}
	switch {
	case selected == 0:
		return nil, errors.New("pass -figure N, -structure NAME or -all (see -list)")
	case selected > 1:
		return nil, errors.New("-figure, -structure and -all are mutually exclusive")
	case all:
		return harness.Figures, nil
	case structure != "":
		fig, err := harness.StructureFigure(structure)
		if err != nil {
			return nil, err
		}
		return []harness.Figure{fig}, nil
	default:
		fig, err := harness.FigureByID(figureID)
		if err != nil {
			return nil, err
		}
		return []harness.Figure{fig}, nil
	}
}

// renderChart draws the figure's series as an ASCII line chart, the
// terminal rendition of the paper's plots.
func renderChart(title string, points []harness.Point) error {
	order := []string{}
	seen := map[string]bool{}
	byMgr := map[string]*plot.Series{}
	for _, p := range points {
		if !seen[p.Manager] {
			seen[p.Manager] = true
			order = append(order, p.Manager)
			byMgr[p.Manager] = &plot.Series{Name: p.Manager}
		}
		s := byMgr[p.Manager]
		s.X = append(s.X, float64(p.Threads))
		s.Y = append(s.Y, p.CommitsPerSec)
	}
	series := make([]plot.Series, 0, len(order))
	for _, name := range order {
		series = append(series, *byMgr[name])
	}
	return plot.Render(os.Stdout, series, plot.Options{
		Title:  title,
		XLabel: "threads",
		YLabel: "committed tx/sec",
	})
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("stmbench: bad thread count %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// usage reports a bad invocation: the error, then the flag summary,
// then exit code 2 (the flag package's own convention).
func usage(msg string) {
	fmt.Fprintln(os.Stderr, "stmbench:", msg)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stmbench:", err)
	os.Exit(1)
}
