package main

import (
	"testing"
)

// TestSelectFigures pins the -all/-figure/-structure resolution:
// exactly one selector, and unknown values are rejected with an error
// rather than silently running a default.
func TestSelectFigures(t *testing.T) {
	tests := []struct {
		name      string
		all       bool
		figure    int
		structure string
		wantErr   bool
		wantCount int
		wantFirst string // Structure of the first figure, "" = don't check
	}{
		{name: "nothing selected", wantErr: true},
		{name: "all", all: true, wantCount: 10},
		{name: "figure 1", figure: 1, wantCount: 1, wantFirst: "list"},
		{name: "figure 5 is hashset", figure: 5, wantCount: 1, wantFirst: "hashset"},
		{name: "figure 7 is omap", figure: 7, wantCount: 1, wantFirst: "omap"},
		{name: "figure 8 is kv", figure: 8, wantCount: 1, wantFirst: "kv"},
		{name: "figure 9 is kvwal", figure: 9, wantCount: 1, wantFirst: "kvwal"},
		{name: "figure 10 is jobs", figure: 10, wantCount: 1, wantFirst: "jobs"},
		{name: "structure jobs", structure: "jobs", wantCount: 1, wantFirst: "jobs"},
		{name: "unknown figure", figure: 99, wantErr: true},
		{name: "negative figure", figure: -3, wantErr: true},
		{name: "structure hashset", structure: "hashset", wantCount: 1, wantFirst: "hashset"},
		{name: "structure queue", structure: "queue", wantCount: 1, wantFirst: "queue"},
		{name: "structure omap", structure: "omap", wantCount: 1, wantFirst: "omap"},
		{name: "structure kv", structure: "kv", wantCount: 1, wantFirst: "kv"},
		{name: "structure list", structure: "list", wantCount: 1, wantFirst: "list"},
		{name: "unknown structure", structure: "btree", wantErr: true},
		{name: "all and figure", all: true, figure: 1, wantErr: true},
		{name: "all and structure", all: true, structure: "queue", wantErr: true},
		{name: "figure and structure", figure: 2, structure: "queue", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			figs, err := selectFigures(tt.all, tt.figure, tt.structure)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("selectFigures(%v, %d, %q) accepted; want error", tt.all, tt.figure, tt.structure)
				}
				return
			}
			if err != nil {
				t.Fatalf("selectFigures(%v, %d, %q): %v", tt.all, tt.figure, tt.structure, err)
			}
			if len(figs) != tt.wantCount {
				t.Fatalf("got %d figures, want %d", len(figs), tt.wantCount)
			}
			if tt.wantFirst != "" && figs[0].Structure != tt.wantFirst {
				t.Fatalf("first figure structure = %q, want %q", figs[0].Structure, tt.wantFirst)
			}
		})
	}
}
