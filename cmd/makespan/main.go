// Command makespan runs the paper's theory experiments:
//
//	adversary — the Section 4 worst-case instance: greedy needs s+1
//	            time units where an optimal list schedule needs 2;
//	ratio     — Theorem 9: greedy's makespan on random instances
//	            against the exact off-line optimum, checked against
//	            the s(s+1)+2 bound;
//	bounded   — Theorem 1 on the real STM: n simultaneous
//	            transactions all commit, with per-transaction abort
//	            counts;
//	pending   — the pending-commit property: greedy satisfies it,
//	            always-wait deadlocks and the trace checker reports
//	            the violation;
//	lemma7    — numeric verification of the Garey–Graham labelling
//	            lemma on random edge partitions of G(m,s);
//	halted    — Section 6: greedy-with-timeout recovers from a halted
//	            transaction, plain greedy stalls;
//	sequences — the open problem of threads running chains of
//	            transactions: makespan vs a resource-work lower bound;
//	randomized — the open problem of randomized managers: completion
//	            time distribution of the coin flip on the instances
//	            that defeat the deterministic extremes;
//	trace     — event trace of the adversary under greedy (debugging
//	            aid and a readable rendition of the paper's cascade).
//
// Usage:
//
//	makespan -exp adversary -s 8
//	makespan -exp ratio -trials 20
//	makespan -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/graph"
	"repro/internal/liveness"
	"repro/internal/sched"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: adversary|ratio|bounded|pending|lemma7|halted|sequences|randomized|trace|all")
		s      = flag.Int("s", 8, "number of shared objects (adversary, trace)")
		m      = flag.Int("m", 2, "ticks per time unit")
		trials = flag.Int("trials", 10, "random trials per parameter point (ratio, lemma7)")
		n      = flag.Int("n", 8, "concurrent transactions (bounded)")
		seed   = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "makespan: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("adversary", func() error { return adversary(*s, *m) })
	run("ratio", func() error { return ratio(*seed, *trials) })
	run("bounded", func() error { return bounded(*n, *seed) })
	run("pending", func() error { return pending(*m) })
	run("lemma7", func() error { return lemma7(*seed, *trials) })
	run("halted", func() error { return halted() })
	run("sequences", func() error { return sequences() })
	run("randomized", func() error { return randomized(*trials) })
	run("trace", func() error { return trace(*s, *m) })
}

func adversary(s, m int) error {
	fmt.Printf("Section 4 adversarial instance, s=%d objects, m=%d ticks/unit\n", s, m)
	fmt.Printf("%-6s %-10s %-10s %-8s %-8s\n", "s", "greedy", "optimal", "ratio", "bound")
	for _, si := range []int{1, 2, 4, s} {
		ins := sched.Adversary(si, m)
		res, err := sched.Simulate(ins, sched.GreedyPolicy{}, 0)
		if err != nil {
			return err
		}
		sys := sched.AdversaryTaskSystem(si, m)
		list, err := sys.ListSchedule(sched.EvenOddOrder(si + 1))
		if err != nil {
			return err
		}
		ratio := float64(res.Makespan) / float64(list.Makespan)
		fmt.Printf("%-6d %-10s %-10s %-8.2f %-8d\n",
			si,
			fmt.Sprintf("%d units", res.Makespan/m),
			fmt.Sprintf("%d units", list.Makespan/m),
			ratio, sched.Bound(si))
		if err := sched.VerifyPendingCommit(res); err != nil {
			return err
		}
	}
	fmt.Println("greedy = s+1 units, optimal = 2 units: the paper's separation, linear in s.")
	return nil
}

func ratio(seed uint64, trials int) error {
	fmt.Println("Theorem 9: greedy vs exact optimal on random instances")
	reports, worst, err := sched.RatioSweep(seed, []int{3, 4, 5, 6}, []int{2, 3, 4}, trials)
	if err != nil {
		return err
	}
	exceeded := 0
	for _, r := range reports {
		if r.Ratio > float64(r.Bound) {
			exceeded++
			fmt.Printf("VIOLATION: %v\n", r)
		}
	}
	fmt.Printf("instances: %d, worst ratio: %.2f, bound violations: %d\n", len(reports), worst, exceeded)
	if exceeded > 0 {
		return fmt.Errorf("Theorem 9 bound violated on %d instances", exceeded)
	}
	fmt.Println("all ratios within s(s+1)+2, far below it in fact (the bound's tightness is open).")
	return nil
}

func bounded(n int, seed uint64) error {
	fmt.Printf("Theorem 1 on the real STM: %d simultaneous transactions over 6 objects\n", n)
	fmt.Printf("%-16s %-10s %-12s %s\n", "manager", "max-aborts", "elapsed", "aborts per tx")
	// Aggressive is excluded: it can livelock here (see -exp pending).
	for _, mgr := range []string{"greedy", "greedy-timeout", "karma", "timestamp"} {
		res, err := liveness.BoundedCommit(mgr, n, 6, 3, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %-10d %-12s %v\n", mgr, res.MaxAborts, res.Elapsed.Round(time.Microsecond), res.AbortsPerTx)
	}
	fmt.Println("every transaction committed; under greedy the oldest is never aborted.")
	return nil
}

func pending(m int) error {
	policies := func() []sched.Policy {
		return []sched.Policy{sched.GreedyPolicy{}, sched.TimidPolicy{}, sched.AggressivePolicy{}, sched.NewKarmaPolicy()}
	}
	report := func(title string, ins *sched.Instance) error {
		fmt.Println(title)
		for _, p := range policies() {
			res, err := sched.Simulate(ins, p, 500)
			if err != nil {
				return err
			}
			status := "completed"
			if !res.Completed {
				status = "DID NOT COMPLETE (deadlock/livelock)"
			}
			pc := "holds"
			if t := sched.CheckPendingCommit(res); t >= 0 {
				pc = fmt.Sprintf("violated at tick %d", t)
			}
			fmt.Printf("  %-12s %-36s pending-commit: %s\n", p.Name(), status, pc)
		}
		return nil
	}
	if err := report("cyclic-conflict instance (deadlocks always-wait):", sched.CycleInstance(m)); err != nil {
		return err
	}
	return report("same-object instance (livelocks always-abort):", sched.LivelockInstance(m))
}

func lemma7(seed uint64, trials int) error {
	fmt.Println("Lemma 7: random edge partitions of G(m,s) into s spanning subgraphs")
	fmt.Printf("%-8s %-8s %-12s %-10s\n", "m", "s", "min of max", "required")
	for _, tc := range []struct{ m, s int }{{1, 2}, {2, 2}, {1, 3}, {2, 3}, {3, 2}} {
		g := graph.GMS(tc.m, tc.s)
		minOfMax := -1.0
		for trial := 0; trial < trials; trial++ {
			parts := randomPartition(g, tc.s, seed+uint64(trial))
			maxScore := 0.0
			for _, part := range parts {
				if sc, _ := part.Score(); sc > maxScore {
					maxScore = sc
				}
			}
			if minOfMax < 0 || maxScore < minOfMax {
				minOfMax = maxScore
			}
		}
		fmt.Printf("%-8d %-8d %-12.1f %-10d\n", tc.m, tc.s, minOfMax, tc.m)
		if minOfMax < float64(tc.m) {
			return fmt.Errorf("Lemma 7 violated for G(%d,%d)", tc.m, tc.s)
		}
	}
	fmt.Println("max_i S(H_i) >= m on every sampled partition, as Lemma 7 requires.")
	return nil
}

func randomPartition(g *graph.Graph, k int, seed uint64) []*graph.Graph {
	parts := make([]*graph.Graph, k)
	for i := range parts {
		parts[i] = graph.New(g.N)
	}
	state := seed
	next := func() uint64 { // splitmix64
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for _, e := range g.Edges {
		i := int(next() % uint64(k))
		parts[i].Edges = append(parts[i].Edges, e)
	}
	return parts
}

func halted() error {
	fmt.Println("Section 6: recovery from a halted (crashed) high-priority transaction")
	fmt.Printf("%-16s %-10s %-12s %s\n", "manager", "recovered", "elapsed", "survivor commits")
	for _, mgr := range []string{"greedy-timeout", "aggressive", "karma", "greedy"} {
		deadline := 3 * time.Second
		if mgr == "greedy" {
			deadline = 300 * time.Millisecond // it will never recover; keep the wait short
		}
		res, err := liveness.HaltedRecovery(mgr, 2, 20, deadline)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %-10v %-12s %d\n", mgr, res.Recovered, res.Elapsed.Round(time.Millisecond), res.SurvivorCommits)
	}
	fmt.Println("plain greedy waits on the corpse forever (Rule 2); the timeout extension recovers.")
	return nil
}

func sequences() error {
	fmt.Println("open problem (Section 6): threads executing sequences of transactions")
	fmt.Printf("%-12s %-8s %-10s %-10s %-10s %-8s\n", "policy", "threads", "per-thread", "makespan", "lower-bd", "ratio")
	for _, shape := range []struct{ threads, per, s int }{{2, 4, 3}, {4, 4, 4}, {8, 3, 4}} {
		ins := sched.SequenceInstance(shape.threads, shape.per, shape.s, 3, 2)
		for _, p := range []sched.Policy{sched.GreedyPolicy{}, sched.NewKarmaPolicy(), sched.AggressivePolicy{}} {
			report, err := sched.MeasureSequences(ins, p)
			if err != nil {
				return err
			}
			status := fmt.Sprintf("%.2f", report.Ratio)
			if !report.Completed {
				status = "stuck"
			}
			fmt.Printf("%-12s %-8d %-10d %-10d %-10d %-8s\n",
				report.Policy, shape.threads, shape.per, report.Makespan, report.LowerBound, status)
		}
	}
	fmt.Println("ratios are against a resource-work lower bound; a tight analysis remains open.")
	return nil
}

func randomized(trials int) error {
	fmt.Println("open problem: randomized contention management, completion-time distribution")
	fmt.Printf("%-22s %-10s %-8s %-8s %-8s %-8s\n", "instance", "completed", "p50", "p90", "p99", "worst")
	for _, tc := range []struct {
		name string
		ins  *sched.Instance
	}{
		{"cycle (kills timid)", sched.CycleInstance(2)},
		{"same-object (kills aggressive)", sched.LivelockInstance(2)},
	} {
		study, err := sched.StudyRandomized(tc.ins, 0.5, uint(trials*20), 100_000)
		if err != nil {
			return err
		}
		fmt.Printf("%-30s %9.0f%% %-8d %-8d %-8d %-8d\n", tc.name,
			100*study.CompletedFraction, study.P50, study.P90, study.P99, study.Worst)
	}
	fmt.Println("the coin flip completes with high probability where each deterministic")
	fmt.Println("extreme fails outright; its tail is unbounded, which is why the paper")
	fmt.Println("asks for a provable high-probability bound (open).")
	return nil
}

func trace(s, m int) error {
	if s > 4 {
		s = 4 // keep the trace readable
	}
	fmt.Printf("greedy on the adversary, s=%d, m=%d — the paper's cascade, event by event\n", s, m)
	ins := sched.Adversary(s, m)
	res, err := sched.SimulateObserved(ins, sched.GreedyPolicy{}, 0, func(tick int, event string, tx, other int) {
		if other >= 0 {
			fmt.Printf("  tick %2d: T%d %s (object/enemy %d)\n", tick, tx, event, other)
			return
		}
		fmt.Printf("  tick %2d: T%d %s\n", tick, tx, event)
	})
	if err != nil {
		return err
	}
	fmt.Printf("makespan: %d ticks = %d time units (s+1 = %d)\n", res.Makespan, res.Makespan/m, s+1)
	return nil
}
