package repro_test

import (
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/intset"
	"repro/internal/liveness"
	"repro/internal/sched"
	"repro/internal/stm"
)

// benchThreads is the worker count for the figure benchmarks: enough
// for real contention without drowning a small CI machine.
const benchThreads = 8

// runFixedOps measures b.N set operations spread across benchThreads
// workers on the given structure under the given manager — the
// fixed-work (rather than fixed-time) form of the harness used by the
// figures, so ns/op is comparable across managers.
func runFixedOps(b *testing.B, structure, manager string, tailWork int, forestAllProb float64) {
	b.Helper()
	factory, err := core.Factory(manager)
	if err != nil {
		b.Fatal(err)
	}
	set, err := intset.NewByName(structure)
	if err != nil {
		b.Fatal(err)
	}
	world := stm.New(stm.WithInterleavePeriod(4), stm.WithManagerFactory(factory))
	for key := 0; key < 256; key += 2 {
		key := key
		if err := world.Atomically(func(tx *stm.Tx) error {
			_, err := set.Insert(tx, key)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
	forest, isForest := set.(*intset.RBForest)

	var next atomic.Int64
	var giveUps atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, benchThreads)
	b.ResetTimer()
	for w := 0; w < benchThreads; w++ {
		rng := rand.New(rand.NewPCG(uint64(w)+1, 0xbe7c))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				key := int(rng.Int64N(256))
				insert := rng.Int64N(2) == 0
				all := isForest && rng.Float64() < forestAllProb
				tree := 0
				if isForest {
					tree = int(rng.Int64N(int64(forest.Size())))
				}
				attempts := 0
				err := world.Atomically(func(tx *stm.Tx) error {
					// Livelock fuse: an always-abort manager can
					// ping-pong workers forever; after a bound the
					// operation is abandoned and counted.
					//stm:impure(livelock fuse: the cross-retry attempt count is what bounds the ping-pong)
					if attempts++; attempts > 2_000 {
						return errGiveUp
					}
					var err error
					switch {
					case all && insert:
						_, err = forest.InsertAll(tx, key)
					case all:
						_, err = forest.RemoveAll(tx, key)
					case isForest && insert:
						_, err = forest.InsertOne(tx, tree, key)
					case isForest:
						_, err = forest.RemoveOne(tx, tree, key)
					case insert:
						_, err = set.Insert(tx, key)
					default:
						_, err = set.Remove(tx, key)
					}
					if err == nil && tailWork > 0 {
						spinWork(tailWork)
					}
					return err
				})
				if errors.Is(err, errGiveUp) {
					giveUps.Add(1)
					continue
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
	stats := world.TotalStats()
	if stats.Commits > 0 {
		b.ReportMetric(float64(stats.Aborts)/float64(stats.Commits), "aborts/commit")
	}
	if g := giveUps.Load(); g > 0 {
		b.ReportMetric(float64(g), "livelock-giveups")
	}
}

// errGiveUp marks an operation abandoned by the livelock fuse.
var errGiveUp = errors.New("bench: livelock fuse blew")

var spinSink atomic.Uint64

func spinWork(n int) {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	spinSink.Store(x)
}

func benchFigure(b *testing.B, structure string, tailWork int, forestAllProb float64, managers []string) {
	b.Helper()
	for _, mgr := range managers {
		mgr := mgr
		b.Run(mgr, func(b *testing.B) {
			runFixedOps(b, structure, mgr, tailWork, forestAllProb)
		})
	}
}

// BenchmarkFigure1List is the paper's Figure 1: the sorted-list
// application under heavy contention, one sub-benchmark per plotted
// manager.
func BenchmarkFigure1List(b *testing.B) { benchFigure(b, "list", 0, 0, core.FigureManagers) }

// BenchmarkFigure2Skiplist is Figure 2: the skiplist application.
func BenchmarkFigure2Skiplist(b *testing.B) { benchFigure(b, "skiplist", 0, 0, core.FigureManagers) }

// BenchmarkFigure3RedBlack is Figure 3: the red-black tree with an
// uncontended computation at the end of each transaction (the paper's
// low-contention scenario).
func BenchmarkFigure3RedBlack(b *testing.B) {
	benchFigure(b, "rbtree", 4000, 0, core.FigureManagers)
}

// BenchmarkFigure4Forest is Figure 4: the red-black forest with
// one-or-all-trees updates (irregular transaction lengths, intensive
// contention). Aggressive is excluded: it livelocks on the forest's
// long transactions (E10), and under fixed work every operation burns
// the whole livelock fuse; the duration-bounded harness
// (cmd/stmbench) measures it honestly instead.
func BenchmarkFigure4Forest(b *testing.B) {
	benchFigure(b, "rbforest", 0, 0.1, []string{"eruption", "greedy", "backoff", "karma"})
}

// BenchmarkAdversarialMakespan simulates the Section 4 worst case for
// greedy (E5).
func BenchmarkAdversarialMakespan(b *testing.B) {
	ins := sched.Adversary(8, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sched.Simulate(ins, sched.GreedyPolicy{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		if res.Makespan != 18 {
			b.Fatalf("makespan = %d, want 18", res.Makespan)
		}
	}
}

// BenchmarkCompetitiveRatio measures a full Theorem 9 data point:
// greedy simulation plus exact optimal scheduling (E6).
func BenchmarkCompetitiveRatio(b *testing.B) {
	rng := rand.New(rand.NewPCG(99, 101))
	ins := sched.RandomInstance(rng, 5, 3, 3, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := sched.MeasureRatio(ins)
		if err != nil {
			b.Fatal(err)
		}
		if report.Ratio > float64(report.Bound) {
			b.Fatalf("bound violated: %v", report)
		}
	}
}

// BenchmarkBoundedCommit runs Theorem 1's experiment on the real STM
// (E7).
func BenchmarkBoundedCommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := liveness.BoundedCommit("greedy", 6, 4, 3, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLemma7 scores a random partition of G(2,2) (E8).
func BenchmarkLemma7(b *testing.B) {
	g := graph.GMS(2, 2)
	for i := 0; i < b.N; i++ {
		if score, _ := g.Score(); score <= 0 {
			b.Fatal("degenerate score")
		}
	}
}

// BenchmarkHaltedRecovery measures the Section 6 recovery path:
// greedy-timeout unblocking survivors stuck behind a halted
// transaction (E9).
func BenchmarkHaltedRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := liveness.HaltedRecovery("greedy-timeout", 1, 3, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Recovered {
			b.Fatal("greedy-timeout failed to recover")
		}
	}
}

// BenchmarkSTMWriteTx measures a minimal single-object write
// transaction (substrate micro-benchmark).
func BenchmarkSTMWriteTx(b *testing.B) {
	world := stm.New()
	counter := stm.NewVar(0)
	th := world.NewThread(core.NewGreedy())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.Atomically(func(tx *stm.Tx) error {
			return stm.Update(tx, counter, func(v int) int { return v + 1 })
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTMReadTx measures a read-only transaction over 16 objects
// (validation-path micro-benchmark).
func BenchmarkSTMReadTx(b *testing.B) {
	world := stm.New()
	vars := make([]*stm.Var[int], 16)
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := world.NewThread(core.NewGreedy())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.Atomically(func(tx *stm.Tx) error {
			sum := 0
			for _, v := range vars {
				n, err := stm.Read(tx, v)
				if err != nil {
					return err
				}
				sum += n
			}
			if sum != 120 {
				b.Errorf("sum = %d", sum)
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHarnessPoint measures one full harness point end to end
// (short window), validating that the figure pipeline itself is sound
// under the benchmark runner.
func BenchmarkHarnessPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		point, err := harness.Run(harness.Config{
			Structure: "rbtree",
			Manager:   "greedy",
			Threads:   4,
			Duration:  20 * time.Millisecond,
			Warmup:    5 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if point.Commits <= 0 {
			b.Fatal("no commits")
		}
	}
}
