// Quickstart: the smallest complete STM program — a shared counter
// incremented by concurrent transactions under the greedy contention
// manager, demonstrating atomic read-modify-write, automatic retry
// after enemy aborts, and the statistics the STM keeps.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/stm"
)

func main() {
	world := stm.New()
	counter := stm.NewTObj(stm.NewBox[int](0))

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// One Thread (and one contention manager instance) per
		// goroutine.
		th := world.NewThread(core.NewGreedy())
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := th.Atomically(func(tx *stm.Tx) error {
					v, err := tx.OpenWrite(counter)
					if err != nil {
						return err // aborted by an enemy: Atomically retries
					}
					v.(*stm.Box[int]).V++
					return nil
				})
				if err != nil {
					log.Fatalf("transaction failed: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	final := counter.Peek().(*stm.Box[int]).V
	stats := world.TotalStats()
	fmt.Printf("counter: %d (want %d)\n", final, workers*perWorker)
	fmt.Printf("commits: %d, aborts: %d, conflicts: %d, abort rate: %.2f%%\n",
		stats.Commits, stats.Aborts, stats.Conflicts, 100*stats.AbortRate())
	if final != workers*perWorker {
		log.Fatal("lost updates — this must never happen")
	}
	fmt.Println("no increment lost: transactions serialized correctly under contention.")
}
