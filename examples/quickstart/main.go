// Quickstart: the smallest complete STM program — a shared counter
// incremented by concurrent transactions under the greedy contention
// manager, demonstrating the typed transactional API (stm.Var and
// stm.Update), the goroutine-agnostic entry point (any goroutine may
// call STM.Atomically; sessions and their manager instances are
// pooled), automatic retry after enemy aborts, and the statistics the
// STM keeps. Exits non-zero if any increment is lost.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/stm"
)

func main() {
	// The STM is configured once with the contention-manager policy;
	// every transaction, from any goroutine, runs on a pooled session
	// carrying its own greedy instance.
	world := stm.New(stm.WithManagerFactory(core.MustFactory("greedy")))
	counter := stm.NewVar(0)

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := world.Atomically(func(tx *stm.Tx) error {
					// Update retries automatically when an enemy aborts
					// the transaction: the returned error propagates and
					// Atomically re-runs the function.
					return stm.Update(tx, counter, func(v int) int { return v + 1 })
				})
				if err != nil {
					log.Fatalf("transaction failed: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	final := counter.Peek()
	stats := world.TotalStats()
	fmt.Printf("counter: %d (want %d)\n", final, workers*perWorker)
	fmt.Printf("commits: %d, aborts: %d, conflicts: %d, abort rate: %.2f%%\n",
		stats.Commits, stats.Aborts, stats.Conflicts, 100*stats.AbortRate())
	if final != workers*perWorker {
		log.Fatal("invariant violated: lost updates — this must never happen")
	}
	fmt.Println("no increment lost: transactions serialized correctly under contention.")
}
