// Producer/consumer: N producers feed a transactional FIFO, M
// consumers drain it, and the run verifies exactly-once delivery in
// FIFO order.
//
// The queue's head and tail variables are permanent hot spots — every
// producer conflicts with every producer, every consumer with every
// consumer — so the contention manager is on the critical path of
// every operation. The invariants checked at the end (and the exit
// status) are:
//
//   - conservation: every produced item is consumed exactly once, and
//     nothing else is consumed;
//   - per-producer FIFO: for any single producer, consumers observe
//     that producer's items in production order (a property single
//     global serialization of enqueues and dequeues must preserve).
//
// Run it with different managers to compare how they handle the
// symmetric hot-spot load:
//
//	go run ./examples/producerconsumer -manager greedy
//	go run ./examples/producerconsumer -producers 8 -consumers 2 -manager karma
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/stm"
)

// item is one produced value: which producer made it, and its
// per-producer sequence number.
type item struct {
	producer int
	seq      int
}

func main() {
	var (
		manager   = flag.String("manager", "greedy", "contention manager")
		producers = flag.Int("producers", 4, "producer goroutines")
		consumers = flag.Int("consumers", 4, "consumer goroutines")
		items     = flag.Int("items", 2000, "items produced per producer")
	)
	flag.Parse()

	factory, err := core.Factory(*manager)
	if err != nil {
		log.Fatal(err)
	}
	world := stm.New(stm.WithManagerFactory(factory))
	queue := container.NewQueue[item]()

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < *producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for seq := 0; seq < *items; seq++ {
				err := world.Atomically(func(tx *stm.Tx) error {
					return queue.Enqueue(tx, item{producer: p, seq: seq})
				})
				if err != nil {
					log.Fatalf("produce: %v", err)
				}
			}
		}(p)
	}

	// Consumers drain until they have collectively consumed everything:
	// an empty dequeue is a committed no-op, retried until the total is
	// reached (producers may still be running).
	total := *producers * *items
	var mu sync.Mutex
	consumed := 0
	got := make([][]item, *consumers)
	for c := 0; c < *consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				mu.Lock()
				if consumed >= total {
					mu.Unlock()
					return
				}
				mu.Unlock()
				v, ok, err := stm.Atomic2(world, queue.Dequeue)
				if err != nil {
					log.Fatalf("consume: %v", err)
				}
				if !ok {
					continue
				}
				mu.Lock()
				consumed++
				got[c] = append(got[c], v)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Invariant 1: conservation — every (producer, seq) pair exactly
	// once, and nothing else.
	seen := make(map[item]int)
	for _, batch := range got {
		for _, v := range batch {
			seen[v]++
		}
	}
	violations := 0
	if len(seen) != total {
		log.Printf("INVARIANT VIOLATED: consumed %d distinct items, want %d", len(seen), total)
		violations++
	}
	for v, n := range seen {
		if n != 1 {
			log.Printf("INVARIANT VIOLATED: item %+v consumed %d times", v, n)
			violations++
		}
		if v.producer < 0 || v.producer >= *producers || v.seq < 0 || v.seq >= *items {
			log.Printf("INVARIANT VIOLATED: phantom item %+v", v)
			violations++
		}
	}

	// Invariant 2: per-producer FIFO — within one consumer's stream,
	// each producer's sequence numbers must be increasing; and because
	// dequeues are serialized transactions, stitching the consumer
	// streams by dequeue order would likewise be increasing. The
	// per-consumer check is the strongest one expressible without
	// recording global dequeue order, and it catches any reordering a
	// broken queue produces within a stream.
	for c, batch := range got {
		last := make(map[int]int)
		for _, v := range batch {
			if prev, ok := last[v.producer]; ok && v.seq <= prev {
				log.Printf("INVARIANT VIOLATED: consumer %d saw producer %d seq %d after %d", c, v.producer, v.seq, prev)
				violations++
			}
			last[v.producer] = v.seq
		}
	}

	// The queue must be empty now.
	left, err := stm.Atomic(world, func(tx *stm.Tx) (int, error) { return queue.Len(tx) })
	if err != nil {
		log.Fatalf("final len: %v", err)
	}
	if left != 0 {
		log.Printf("INVARIANT VIOLATED: %d items still queued after full drain", left)
		violations++
	}

	stats := world.TotalStats()
	fmt.Printf("manager=%s producers=%d consumers=%d items=%d elapsed=%v\n",
		*manager, *producers, *consumers, total, elapsed.Round(time.Millisecond))
	fmt.Printf("commits=%d aborts=%d conflicts=%d abort-rate=%.2f%%\n",
		stats.Commits, stats.Aborts, stats.Conflicts, 100*stats.AbortRate())
	if violations > 0 {
		log.Fatalf("%d invariant violations", violations)
	}
	fmt.Println("every item delivered exactly once, in per-producer FIFO order.")
}
