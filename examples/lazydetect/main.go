// Lazydetect: eager vs lazy conflict detection, the paper's Section 6
// contrast. The same contended-counter workload runs twice — once on
// the eager STM (conflicts at open time, greedy contention manager
// arbitrating) and once on a Harris–Fraser-style lazy STM (conflicts
// at commit time, no contention manager involved) — and reports
// throughput, abort rate, and how much completed work each aborted
// transaction threw away.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stm"
)

func main() {
	var (
		workers  = flag.Int("workers", 8, "concurrent workers")
		duration = flag.Duration("duration", 300*time.Millisecond, "run time per mode")
		objects  = flag.Int("objects", 4, "shared objects per transaction")
	)
	flag.Parse()

	fmt.Printf("%d workers, %d objects per transaction, %v per mode\n\n", *workers, *objects, *duration)
	fmt.Printf("%-14s %14s %12s %16s\n", "mode", "commits/sec", "abort rate", "opens per abort")
	for _, mode := range []string{"eager-greedy", "lazy"} {
		opts := []stm.Option{
			stm.WithInterleavePeriod(2),
			stm.WithManagerFactory(core.MustFactory("greedy")),
		}
		if mode == "lazy" {
			opts = append(opts, stm.WithLazyConflicts())
		}
		world := stm.New(opts...)
		objs := make([]*stm.Var[int], *objects)
		for i := range objs {
			objs[i] = stm.NewVar(0)
		}

		var stop atomic.Bool
		var commits atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					err := world.Atomically(func(tx *stm.Tx) error {
						if stop.Load() {
							return nil // commit empty and check again
						}
						for _, obj := range objs {
							if err := stm.Update(tx, obj, func(v int) int { return v + 1 }); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						log.Fatalf("%s worker: %v", mode, err)
					}
					commits.Add(1)
				}
			}()
		}
		start := time.Now()
		time.Sleep(*duration)
		stop.Store(true)
		wg.Wait()
		elapsed := time.Since(start)

		// Invariant: every committed transaction incremented every
		// object once, so all objects must agree exactly.
		for i, obj := range objs {
			if got, want := obj.Peek(), objs[0].Peek(); got != want {
				log.Fatalf("%s: invariant violated: object %d = %d, object 0 = %d", mode, i, got, want)
			}
		}

		stats := world.TotalStats()
		opensPerAbort := 0.0
		if stats.Aborts > 0 {
			opensPerAbort = float64(stats.Opens) / float64(stats.Commits+stats.Aborts)
		}
		fmt.Printf("%-14s %14.0f %11.1f%% %16.1f\n",
			mode, float64(commits.Load())/elapsed.Seconds(), 100*stats.AbortRate(), opensPerAbort)
	}
	fmt.Println("\nlazy losers only learn they are doomed at commit, after doing all their")
	fmt.Println("opens; eager losers are stopped (or saved by the manager) at first conflict.")
}
