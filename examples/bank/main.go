// Bank: concurrent transfers between accounts with an on-line auditor.
//
// Transfer transactions move money between two random accounts;
// auditor transactions read every account and verify that the total
// balance is conserved. Because the auditor's read set spans all
// accounts it conflicts with every transfer — the scenario that makes
// contention-manager choice matter: a long read-only transaction
// competing with many short writers (the pattern the paper's Section 1
// notes backoff handles poorly). Run it with different managers:
//
//	go run ./examples/bank -manager greedy
//	go run ./examples/bank -manager backoff
//	go run ./examples/bank -manager karma
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stm"
)

func main() {
	var (
		manager  = flag.String("manager", "greedy", "contention manager")
		accounts = flag.Int("accounts", 64, "number of accounts")
		writers  = flag.Int("writers", 6, "transfer threads")
		duration = flag.Duration("duration", 500*time.Millisecond, "run time")
	)
	flag.Parse()

	factory, err := core.Factory(*manager)
	if err != nil {
		log.Fatal(err)
	}

	const initialBalance = 1000
	world := stm.New(stm.WithManagerFactory(factory))
	bank := make([]*stm.Var[int], *accounts)
	for i := range bank {
		bank[i] = stm.NewVar(initialBalance)
	}
	wantTotal := *accounts * initialBalance

	var stop atomic.Bool
	var transfers, audits atomic.Int64
	var wg sync.WaitGroup

	for w := 0; w < *writers; w++ {
		rng := rand.New(rand.NewPCG(uint64(w)+1, 77))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				from := int(rng.Int64N(int64(len(bank))))
				to := int(rng.Int64N(int64(len(bank))))
				if from == to {
					continue
				}
				amount := int(rng.Int64N(50)) + 1
				err := world.Atomically(func(tx *stm.Tx) error {
					if err := stm.Update(tx, bank[from], func(b int) int { return b - amount }); err != nil {
						return err
					}
					return stm.Update(tx, bank[to], func(b int) int { return b + amount })
				})
				if err != nil {
					log.Fatalf("transfer: %v", err)
				}
				transfers.Add(1)
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			// One consistent multi-account snapshot per audit: the
			// whole read set is validated at a single serialization
			// point, so a mid-transfer state can never be observed.
			balances, err := stm.Snapshot(world, bank...)
			if err != nil {
				log.Fatalf("audit: %v", err)
			}
			total := 0
			for _, b := range balances {
				total += b
			}
			if total != wantTotal {
				log.Fatalf("audit observed total %d, want %d — serializability broken", total, wantTotal)
			}
			audits.Add(1)
		}
	}()

	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()

	finalTotal := 0
	for _, acct := range bank {
		finalTotal += acct.Peek()
	}
	stats := world.TotalStats()
	fmt.Printf("manager=%s transfers=%d audits=%d\n", *manager, transfers.Load(), audits.Load())
	fmt.Printf("final total: %d (want %d)\n", finalTotal, wantTotal)
	fmt.Printf("commits=%d aborts=%d conflicts=%d abort-rate=%.2f%%\n",
		stats.Commits, stats.Aborts, stats.Conflicts, 100*stats.AbortRate())
	if finalTotal != wantTotal {
		log.Fatal("invariant violated: balance not conserved")
	}
	fmt.Println("every audit saw a conserved total: snapshots were consistent.")
}
