// Rbforest: the paper's Figure 4 workload as a standalone program — a
// forest of red-black trees updated by transactions of wildly varying
// length (one tree, or all fifty in a single transaction). It prints a
// per-manager comparison so the effect of transaction-length variance
// on contention-management policy is visible directly.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		threads  = flag.Int("threads", 8, "worker threads")
		duration = flag.Duration("duration", 300*time.Millisecond, "measurement window per manager")
		allProb  = flag.Float64("allprob", 0.1, "probability a transaction updates all trees")
	)
	flag.Parse()

	fmt.Printf("red-black forest: %d threads, %.0f%% of updates touch all %d trees\n\n",
		*threads, *allProb*100, 50)
	fmt.Printf("%-14s %14s %12s\n", "manager", "commits/sec", "abort rate")
	for _, mgr := range []string{"eruption", "greedy", "aggressive", "backoff", "karma"} {
		point, err := harness.Run(harness.Config{
			Structure:     "rbforest",
			Manager:       mgr,
			Threads:       *threads,
			Duration:      *duration,
			ForestAllProb: *allProb,
			Audit:         true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %14.0f %11.1f%%\n", mgr, point.CommitsPerSec, 100*point.AbortRate)
	}
	fmt.Println("\nstructural audit passed for every tree after every run.")
}
