// Adversary: the paper's Section 4 lower-bound instance, animated.
//
// Transactions T0..Ts share objects X1..Xs; Ti is older than Ti-1.
// Everyone grabs their first object at time 0, and at the end of the
// time unit each Ti opens Xi, aborting Ti-1 in a cascade that lets
// only the oldest transaction commit — one commit per round, for a
// makespan of s+1 time units where an optimal off-line list schedule
// (evens, then odds) finishes in 2.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/plot"
	"repro/internal/sched"
)

func main() {
	var (
		s       = flag.Int("s", 4, "number of shared objects")
		m       = flag.Int("m", 2, "ticks per time unit")
		verbose = flag.Bool("v", false, "print every simulator event")
	)
	flag.Parse()

	ins := sched.Adversary(*s, *m)
	fmt.Printf("the Section 4 adversary with s=%d objects (m=%d ticks per unit)\n\n", *s, *m)
	for _, spec := range ins.Specs {
		fmt.Printf("  %s timestamp=%d accesses=%v\n", spec.Label, spec.Timestamp, spec.Accesses)
	}
	fmt.Println()

	var obs sched.Observer
	if *verbose {
		obs = func(tick int, event string, tx, other int) {
			fmt.Printf("  tick %2d: T%d %s", tick, tx, event)
			if other >= 0 {
				fmt.Printf(" [%d]", other)
			}
			fmt.Println()
		}
	}
	res, err := sched.SimulateObserved(ins, sched.GreedyPolicy{}, 0, obs)
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.VerifyPendingCommit(res); err != nil {
		log.Fatal(err)
	}

	sys := sched.AdversaryTaskSystem(*s, *m)
	list, err := sys.ListSchedule(sched.EvenOddOrder(*s + 1))
	if err != nil {
		log.Fatal(err)
	}

	// Gantt view of the cascade: '=' runs to commit, 'x' runs into an
	// abort, '.' waits.
	var spans []plot.Span
	for _, act := range res.Actions {
		glyph := byte('=')
		switch act.Kind {
		case sched.ActionAbort:
			glyph = 'x'
		case sched.ActionWait:
			glyph = '.'
		}
		spans = append(spans, plot.Span{
			Row:   ins.Specs[act.Tx].Label,
			Start: act.Start,
			End:   act.End,
			Glyph: glyph,
		})
	}
	if err := plot.Gantt(os.Stdout, "execution (one round per surviving oldest transaction):", spans); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Printf("commit order (tick): %v\n", res.CommitTick)
	fmt.Printf("greedy makespan:     %d time units (one transaction per round)\n", res.Makespan / *m)
	fmt.Printf("optimal list:        %d time units (evens together, then odds)\n", list.Makespan / *m)
	fmt.Printf("ratio %.1f is linear in s; Theorem 9's worst-case bound is s(s+1)+2 = %d\n",
		float64(res.Makespan)/float64(list.Makespan), sched.Bound(*s))
	// Invariant: the Section 4 analysis predicts exactly s+1 rounds for
	// greedy and 2 for the off-line list schedule.
	if got, want := res.Makespan / *m, *s+1; got != want {
		log.Fatalf("invariant violated: greedy makespan = %d time units, want s+1 = %d", got, want)
	}
	if got := list.Makespan / *m; got != 2 {
		log.Fatalf("invariant violated: optimal list makespan = %d time units, want 2", got)
	}
	fmt.Println("whether the quadratic bound is tight is the paper's open problem.")
}
